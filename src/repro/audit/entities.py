"""System entity and system event model.

This module mirrors Tables I-III of the ThreatRaptor paper.  System entities
are files, processes, and network connections; system events are interactions
``<subject_entity, operation, object_entity>`` where the subject is always a
process and the object is a file, process, or network connection.

Entities carry the representative attributes listed in Table II and events the
attributes listed in Table III.  Unique identity follows Section III-A:

* process  -> (executable name, pid)
* file     -> absolute path
* network  -> (src ip, src port, dst ip, dst port, protocol)
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterator, Union


class EntityType(enum.Enum):
    """The three kinds of system entities considered by ThreatRaptor."""

    FILE = "file"
    PROCESS = "proc"
    NETWORK = "ip"

    @classmethod
    def from_string(cls, value: str) -> "EntityType":
        normalized = value.strip().lower()
        aliases = {
            "file": cls.FILE,
            "f": cls.FILE,
            "proc": cls.PROCESS,
            "process": cls.PROCESS,
            "p": cls.PROCESS,
            "ip": cls.NETWORK,
            "network": cls.NETWORK,
            "netconn": cls.NETWORK,
            "connection": cls.NETWORK,
        }
        if normalized not in aliases:
            raise ValueError(f"unknown entity type: {value!r}")
        return aliases[normalized]


class EventCategory(enum.Enum):
    """Event categories, keyed by the type of the object entity."""

    FILE_EVENT = "file_event"
    PROCESS_EVENT = "process_event"
    NETWORK_EVENT = "network_event"


class Operation(enum.Enum):
    """Operation types of system events (Table III)."""

    READ = "read"
    WRITE = "write"
    EXECUTE = "execute"
    START = "start"
    END = "end"
    RENAME = "rename"
    DELETE = "delete"
    CONNECT = "connect"
    ACCEPT = "accept"
    SEND = "send"
    RECEIVE = "receive"
    OPEN = "open"
    CHMOD = "chmod"
    FORK = "fork"

    @classmethod
    def from_string(cls, value: str) -> "Operation":
        normalized = value.strip().lower()
        for member in cls:
            if member.value == normalized:
                return member
        raise ValueError(f"unknown operation: {value!r}")


#: Operations whose object entity is expected to be a network connection.
NETWORK_OPERATIONS = frozenset({
    Operation.CONNECT, Operation.ACCEPT, Operation.SEND, Operation.RECEIVE,
})

#: Operations whose object entity is expected to be a process.
PROCESS_OPERATIONS = frozenset({
    Operation.START, Operation.END, Operation.FORK,
})


_ENTITY_ID_COUNTER = itertools.count(1)
_EVENT_ID_COUNTER = itertools.count(1)


def _next_entity_id() -> int:
    return next(_ENTITY_ID_COUNTER)


def _next_event_id() -> int:
    return next(_EVENT_ID_COUNTER)


@dataclass(frozen=True)
class FileEntity:
    """A file system entity (Table II)."""

    path: str
    name: str = ""
    user: str = "root"
    group: str = "root"
    entity_id: int = field(default_factory=_next_entity_id)

    def __post_init__(self) -> None:
        if not self.name:
            object.__setattr__(self, "name", self.path)

    @property
    def entity_type(self) -> EntityType:
        return EntityType.FILE

    @cached_property
    def unique_key(self) -> tuple:
        # cached_property: the key is recomputed per event during reduction
        # keying and store loading; entities are frozen, so caching is safe
        # (functools stores the value straight into __dict__, bypassing the
        # frozen __setattr__).
        return (EntityType.FILE, self.path)

    def attributes(self) -> dict:
        """Return the attribute dictionary used by the storage backends."""
        return {
            "type": self.entity_type.value,
            "name": self.name,
            "path": self.path,
            "user": self.user,
            "group": self.group,
        }

    @property
    def default_attribute(self) -> str:
        return "name"


@dataclass(frozen=True)
class ProcessEntity:
    """A process entity (Table II)."""

    exename: str
    pid: int
    user: str = "root"
    group: str = "root"
    cmdline: str = ""
    entity_id: int = field(default_factory=_next_entity_id)

    @property
    def entity_type(self) -> EntityType:
        return EntityType.PROCESS

    @cached_property
    def unique_key(self) -> tuple:
        return (EntityType.PROCESS, self.exename, self.pid)

    def attributes(self) -> dict:
        return {
            "type": self.entity_type.value,
            "exename": self.exename,
            "pid": self.pid,
            "user": self.user,
            "group": self.group,
            "cmdline": self.cmdline or self.exename,
        }

    @property
    def default_attribute(self) -> str:
        return "exename"


@dataclass(frozen=True)
class NetworkEntity:
    """A network connection entity identified by its 5-tuple (Table II)."""

    srcip: str
    srcport: int
    dstip: str
    dstport: int
    protocol: str = "tcp"
    entity_id: int = field(default_factory=_next_entity_id)

    @property
    def entity_type(self) -> EntityType:
        return EntityType.NETWORK

    @cached_property
    def unique_key(self) -> tuple:
        return (EntityType.NETWORK, self.srcip, self.srcport, self.dstip,
                self.dstport, self.protocol)

    def attributes(self) -> dict:
        return {
            "type": self.entity_type.value,
            "srcip": self.srcip,
            "srcport": self.srcport,
            "dstip": self.dstip,
            "dstport": self.dstport,
            "protocol": self.protocol,
        }

    @property
    def default_attribute(self) -> str:
        return "dstip"


SystemEntity = Union[FileEntity, ProcessEntity, NetworkEntity]


#: Default attribute per entity type, used by TBQL syntactic sugar.
DEFAULT_ATTRIBUTES = {
    EntityType.FILE: "name",
    EntityType.PROCESS: "exename",
    EntityType.NETWORK: "dstip",
}


@dataclass(frozen=True)
class SystemEvent:
    """A system event ``<subject, operation, object>`` (Table III).

    Times are floating point seconds (UNIX epoch style).  ``data_amount``
    accumulates bytes transferred when events are merged by data reduction.
    """

    subject: ProcessEntity
    operation: Operation
    obj: SystemEntity
    start_time: float
    end_time: float
    data_amount: int = 0
    failure_code: int = 0
    host: str = "host-0"
    event_id: int = field(default_factory=_next_event_id)

    def __post_init__(self) -> None:
        if self.end_time < self.start_time:
            raise ValueError(
                f"event end_time {self.end_time} precedes start_time "
                f"{self.start_time}")

    @property
    def duration(self) -> float:
        return self.end_time - self.start_time

    @property
    def category(self) -> EventCategory:
        if isinstance(self.obj, FileEntity):
            return EventCategory.FILE_EVENT
        if isinstance(self.obj, ProcessEntity):
            return EventCategory.PROCESS_EVENT
        return EventCategory.NETWORK_EVENT

    def attributes(self) -> dict:
        """Return the attribute dictionary used by the storage backends.

        The dictionary is computed once per event and cached (events are
        frozen, so the attributes never change); callers must treat the
        returned dictionary as read-only and copy it before mutating.
        """
        cached = self.__dict__.get("_attributes")
        if cached is None:
            cached = {
                "operation": self.operation.value,
                "start_time": self.start_time,
                "end_time": self.end_time,
                "duration": self.duration,
                "subject_id": self.subject.entity_id,
                "object_id": self.obj.entity_id,
                "data_amount": self.data_amount,
                "failure_code": self.failure_code,
                "host": self.host,
                "category": self.category.value,
            }
            self.__dict__["_attributes"] = cached
        return cached

    def merged_with(self, later: "SystemEvent") -> "SystemEvent":
        """Return the reduction merge of this event with a later event.

        The attributes follow Section III-B: start time from the earlier
        event, end time from the later event, data amounts summed.
        """
        return self.with_merged_span(later.end_time,
                                     self.data_amount + later.data_amount)

    def with_merged_span(self, end_time: float,
                         data_amount: int) -> "SystemEvent":
        """Copy of this event with a widened span and summed data amount.

        The reduction hot path: built by copying the instance state directly
        (skipping the dataclass constructor, whose field-by-field rebuild
        dominates merge cost) — valid because every field but the two
        overrides is shared and ``end_time`` only ever grows, so the
        ``__post_init__`` ordering check cannot fail.
        """
        merged = object.__new__(SystemEvent)
        state = dict(self.__dict__)
        state.pop("_attributes", None)  # cached attrs describe the old span
        state["end_time"] = end_time
        state["data_amount"] = data_amount
        merged.__dict__.update(state)
        return merged


def entity_matches_type(entity: SystemEntity, entity_type: EntityType) -> bool:
    """Return whether ``entity`` has the requested :class:`EntityType`."""
    return entity.entity_type is entity_type


def iter_unique_entities(events: list[SystemEvent]) -> Iterator[SystemEntity]:
    """Yield each distinct entity referenced by ``events`` exactly once.

    Distinctness follows the per-type unique keys from Section III-A.
    """
    seen: set[tuple] = set()
    for event in events:
        for entity in (event.subject, event.obj):
            key = entity.unique_key
            if key not in seen:
                seen.add(key)
                yield entity


def make_entity(entity_type: EntityType, **kwargs) -> SystemEntity:
    """Construct an entity of the given type from keyword attributes."""
    if entity_type is EntityType.FILE:
        return FileEntity(**kwargs)
    if entity_type is EntityType.PROCESS:
        return ProcessEntity(**kwargs)
    if entity_type is EntityType.NETWORK:
        return NetworkEntity(**kwargs)
    raise ValueError(f"unsupported entity type: {entity_type}")


def default_attribute_for(entity_type: EntityType) -> str:
    """Return the TBQL default attribute name for ``entity_type``."""
    return DEFAULT_ATTRIBUTES[entity_type]


def reset_id_counters() -> None:
    """Reset the global id counters (intended for tests and benchmarks)."""
    global _ENTITY_ID_COUNTER, _EVENT_ID_COUNTER
    _ENTITY_ID_COUNTER = itertools.count(1)
    _EVENT_ID_COUNTER = itertools.count(1)


__all__ = [
    "EntityType",
    "EventCategory",
    "Operation",
    "NETWORK_OPERATIONS",
    "PROCESS_OPERATIONS",
    "FileEntity",
    "ProcessEntity",
    "NetworkEntity",
    "SystemEntity",
    "SystemEvent",
    "DEFAULT_ATTRIBUTES",
    "entity_matches_type",
    "iter_unique_entities",
    "make_entity",
    "default_attribute_for",
    "reset_id_counters",
]
