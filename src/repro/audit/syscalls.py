"""System call to system event mapping (Table I).

The kernel auditing frameworks used by the paper (Linux Audit, ETW, Sysdig)
report raw system calls.  ThreatRaptor maps them onto the three event
categories it cares about: process-to-file, process-to-process, and
process-to-network interactions.  This module provides that mapping for the
synthetic collector and the log parser.
"""

from __future__ import annotations

from dataclasses import dataclass

from .entities import EntityType, Operation


@dataclass(frozen=True)
class SyscallSpec:
    """Describes how one system call is interpreted as a system event."""

    name: str
    operation: Operation
    object_type: EntityType


#: Table I of the paper: representative system calls per event category.
SYSCALL_TABLE: dict[str, SyscallSpec] = {
    # ProcessToFile
    "read": SyscallSpec("read", Operation.READ, EntityType.FILE),
    "readv": SyscallSpec("readv", Operation.READ, EntityType.FILE),
    "pread64": SyscallSpec("pread64", Operation.READ, EntityType.FILE),
    "write": SyscallSpec("write", Operation.WRITE, EntityType.FILE),
    "writev": SyscallSpec("writev", Operation.WRITE, EntityType.FILE),
    "pwrite64": SyscallSpec("pwrite64", Operation.WRITE, EntityType.FILE),
    "open": SyscallSpec("open", Operation.OPEN, EntityType.FILE),
    "openat": SyscallSpec("openat", Operation.OPEN, EntityType.FILE),
    "rename": SyscallSpec("rename", Operation.RENAME, EntityType.FILE),
    "renameat": SyscallSpec("renameat", Operation.RENAME, EntityType.FILE),
    "unlink": SyscallSpec("unlink", Operation.DELETE, EntityType.FILE),
    "unlinkat": SyscallSpec("unlinkat", Operation.DELETE, EntityType.FILE),
    "chmod": SyscallSpec("chmod", Operation.CHMOD, EntityType.FILE),
    "execve_file": SyscallSpec("execve_file", Operation.EXECUTE,
                               EntityType.FILE),
    # ProcessToProcess
    "execve": SyscallSpec("execve", Operation.START, EntityType.PROCESS),
    "fork": SyscallSpec("fork", Operation.START, EntityType.PROCESS),
    "vfork": SyscallSpec("vfork", Operation.START, EntityType.PROCESS),
    "clone": SyscallSpec("clone", Operation.START, EntityType.PROCESS),
    "exit": SyscallSpec("exit", Operation.END, EntityType.PROCESS),
    "exit_group": SyscallSpec("exit_group", Operation.END, EntityType.PROCESS),
    "kill": SyscallSpec("kill", Operation.END, EntityType.PROCESS),
    # ProcessToNetwork
    "connect": SyscallSpec("connect", Operation.CONNECT, EntityType.NETWORK),
    "accept": SyscallSpec("accept", Operation.ACCEPT, EntityType.NETWORK),
    "accept4": SyscallSpec("accept4", Operation.ACCEPT, EntityType.NETWORK),
    "sendto": SyscallSpec("sendto", Operation.SEND, EntityType.NETWORK),
    "sendmsg": SyscallSpec("sendmsg", Operation.SEND, EntityType.NETWORK),
    "send": SyscallSpec("send", Operation.SEND, EntityType.NETWORK),
    "recvfrom": SyscallSpec("recvfrom", Operation.RECEIVE, EntityType.NETWORK),
    "recvmsg": SyscallSpec("recvmsg", Operation.RECEIVE, EntityType.NETWORK),
    "recv": SyscallSpec("recv", Operation.RECEIVE, EntityType.NETWORK),
    "read_net": SyscallSpec("read_net", Operation.RECEIVE, EntityType.NETWORK),
    "write_net": SyscallSpec("write_net", Operation.SEND, EntityType.NETWORK),
}


#: Reverse map: which syscall name the collector emits for an operation on a
#: given object type.  Used by the synthetic collector when replaying scripted
#: attack steps expressed as (operation, object type) pairs.
_REVERSE_TABLE: dict[tuple[Operation, EntityType], str] = {}
for _name, _spec in SYSCALL_TABLE.items():
    _REVERSE_TABLE.setdefault((_spec.operation, _spec.object_type), _name)
# Semantically useful aliases that are not the first match above.
_REVERSE_TABLE[(Operation.READ, EntityType.NETWORK)] = "recvfrom"
_REVERSE_TABLE[(Operation.WRITE, EntityType.NETWORK)] = "sendto"
_REVERSE_TABLE[(Operation.EXECUTE, EntityType.FILE)] = "execve_file"
_REVERSE_TABLE[(Operation.FORK, EntityType.PROCESS)] = "fork"


def lookup_syscall(name: str) -> SyscallSpec:
    """Return the :class:`SyscallSpec` for a raw syscall name.

    Raises:
        KeyError: if the syscall is not one ThreatRaptor processes.
    """
    return SYSCALL_TABLE[name]


def is_monitored(name: str) -> bool:
    """Return whether the syscall is one of the monitored calls (Table I)."""
    return name in SYSCALL_TABLE


def syscall_for(operation: Operation, object_type: EntityType) -> str:
    """Return a representative syscall name for an (operation, object) pair.

    Operations that do not map exactly onto a syscall (e.g. ``read`` on a
    network connection) are mapped to the closest monitored call, mirroring
    how the kernel reports socket reads/writes through ``recvfrom``/``sendto``.
    """
    key = (operation, object_type)
    if key in _REVERSE_TABLE:
        return _REVERSE_TABLE[key]
    # Fall back to operations that are object-type agnostic in the kernel.
    for (op, _), name in _REVERSE_TABLE.items():
        if op is operation:
            return name
    raise KeyError(f"no monitored syscall for {operation} on {object_type}")


def event_category_of(name: str) -> EntityType:
    """Return the object entity type produced by the named syscall."""
    return lookup_syscall(name).object_type


__all__ = [
    "SyscallSpec",
    "SYSCALL_TABLE",
    "lookup_syscall",
    "is_monitored",
    "syscall_for",
    "event_category_of",
]
