"""Benign background workload generator.

The paper's testbed is a shared server with more than fifteen active users
doing routine work (file manipulation, text editing, software development), so
benign activities vastly outnumber attack activities.  This module generates
that benign background noise deterministically so experiments are repeatable.

The generator produces a mixture of realistic activity "sessions": shell file
manipulation, text editing, compilation, package management, web browsing, and
periodic system daemons.  Every session is recorded through an
:class:`~repro.audit.collector.AuditCollector`, so the noise has the same
burst structure as real audit logs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .collector import AuditCollector, CollectorConfig
from .entities import Operation, SystemEvent

_USERS = ["alice", "bob", "carol", "dave", "erin", "frank", "grace", "heidi",
          "ivan", "judy", "mallory", "niaj", "olivia", "peggy", "rupert",
          "sybil"]

_EDITOR_BINARIES = ["/usr/bin/vim", "/usr/bin/nano", "/usr/bin/emacs",
                    "/usr/bin/code"]
_SHELL_BINARIES = ["/bin/bash", "/bin/zsh", "/bin/sh"]
_DEV_BINARIES = ["/usr/bin/gcc", "/usr/bin/make", "/usr/bin/python3",
                 "/usr/bin/git", "/usr/bin/javac"]
_BROWSER_BINARIES = ["/usr/bin/firefox", "/usr/bin/chrome"]
_DAEMON_BINARIES = ["/usr/sbin/cron", "/usr/sbin/rsyslogd",
                    "/usr/sbin/sshd", "/usr/bin/dockerd"]
_WEB_IPS = ["93.184.216.34", "151.101.1.69", "142.250.72.206",
            "104.16.132.229", "13.107.42.14"]
_DOC_DIRS = ["/home/{user}/docs", "/home/{user}/projects",
             "/home/{user}/notes", "/var/data/shared"]
_SYSTEM_FILES = ["/var/log/syslog", "/var/log/auth.log", "/etc/hosts",
                 "/etc/resolv.conf", "/proc/meminfo", "/proc/stat"]


@dataclass
class WorkloadConfig:
    """Controls the amount and mix of benign background activity."""

    #: Number of benign activity sessions to generate.
    num_sessions: int = 50
    #: Random seed; identical seeds generate identical noise.
    seed: int = 13
    #: Average number of actions within a session.
    actions_per_session: int = 6
    #: Host name stamped on generated events.
    host: str = "host-0"
    #: Virtual start time of the noise window.
    start_time: float = 1_523_400_000.0


class BenignWorkloadGenerator:
    """Generates deterministic benign audit activity."""

    def __init__(self, config: WorkloadConfig | None = None) -> None:
        self.config = config or WorkloadConfig()
        self._rng = random.Random(self.config.seed)

    def generate(self, collector: AuditCollector | None = None
                 ) -> list[SystemEvent]:
        """Generate benign events, optionally into an existing collector."""
        if collector is None:
            collector = AuditCollector(CollectorConfig(
                host=self.config.host, start_time=self.config.start_time,
                seed=self.config.seed))
        sessions = [self._session_editing, self._session_development,
                    self._session_browsing, self._session_shell,
                    self._session_daemon]
        produced: list[SystemEvent] = []
        for _ in range(self.config.num_sessions):
            session = self._rng.choice(sessions)
            produced.extend(session(collector))
            collector.advance(self._rng.uniform(1.0, 20.0))
        return produced

    def generate_log(self) -> str:
        """Generate benign noise and return it as audit log text."""
        collector = AuditCollector(CollectorConfig(
            host=self.config.host, start_time=self.config.start_time,
            seed=self.config.seed))
        self.generate(collector)
        return collector.to_log()

    # ------------------------------------------------------------------
    # session builders
    # ------------------------------------------------------------------
    def _pick_user(self) -> str:
        return self._rng.choice(_USERS)

    def _user_file(self, user: str, suffix: str) -> str:
        directory = self._rng.choice(_DOC_DIRS).format(user=user)
        return f"{directory}/{suffix}"

    def _num_actions(self) -> int:
        base = self.config.actions_per_session
        return max(1, base + self._rng.randrange(-2, 3))

    def _session_editing(self, collector: AuditCollector
                         ) -> list[SystemEvent]:
        user = self._pick_user()
        editor = collector.spawn_process(self._rng.choice(_EDITOR_BINARIES),
                                         user=user)
        events: list[SystemEvent] = []
        for index in range(self._num_actions()):
            path = self._user_file(user, f"report_{index}.txt")
            events += collector.read_file(editor, path,
                                          burst=self._rng.randrange(1, 4))
            if self._rng.random() < 0.7:
                events += collector.write_file(editor, path,
                                               burst=self._rng.randrange(1, 4))
        return events

    def _session_development(self, collector: AuditCollector
                             ) -> list[SystemEvent]:
        user = self._pick_user()
        shell = collector.spawn_process(self._rng.choice(_SHELL_BINARIES),
                                        user=user)
        events: list[SystemEvent] = []
        for index in range(self._num_actions()):
            tool_name = self._rng.choice(_DEV_BINARIES)
            tool, start_events = collector.start_process(shell, tool_name)
            events += start_events
            source = self._user_file(user, f"src/module_{index}.c")
            events += collector.read_file(tool, source)
            events += collector.write_file(
                tool, self._user_file(user, f"build/module_{index}.o"))
            events += collector.record(tool, Operation.END, tool)
        return events

    def _session_browsing(self, collector: AuditCollector
                          ) -> list[SystemEvent]:
        user = self._pick_user()
        browser = collector.spawn_process(self._rng.choice(_BROWSER_BINARIES),
                                          user=user)
        events: list[SystemEvent] = []
        for _ in range(self._num_actions()):
            ip = self._rng.choice(_WEB_IPS)
            events += collector.connect_ip(browser, ip, dstport=443)
            events += collector.receive_from(browser, ip, dstport=443,
                                             burst=self._rng.randrange(2, 6))
            if self._rng.random() < 0.4:
                events += collector.write_file(
                    browser,
                    f"/home/{user}/.cache/mozilla/{self._rng.randrange(9999)}")
        return events

    def _session_shell(self, collector: AuditCollector) -> list[SystemEvent]:
        user = self._pick_user()
        shell = collector.spawn_process(self._rng.choice(_SHELL_BINARIES),
                                        user=user)
        events: list[SystemEvent] = []
        for index in range(self._num_actions()):
            action = self._rng.random()
            if action < 0.4:
                tool, start_events = collector.start_process(shell, "/bin/ls")
                events += start_events
                events += collector.read_file(
                    tool, self._user_file(user, f"dir_{index}"))
            elif action < 0.7:
                tool, start_events = collector.start_process(shell, "/bin/cp")
                events += start_events
                source = self._user_file(user, f"data_{index}.csv")
                events += collector.read_file(tool, source)
                events += collector.write_file(tool, source + ".bak")
            else:
                events += collector.read_file(
                    shell, self._rng.choice(_SYSTEM_FILES))
        return events

    def _session_daemon(self, collector: AuditCollector) -> list[SystemEvent]:
        daemon = collector.spawn_process(self._rng.choice(_DAEMON_BINARIES),
                                         user="root")
        events: list[SystemEvent] = []
        for _ in range(self._num_actions()):
            events += collector.write_file(daemon,
                                           self._rng.choice(_SYSTEM_FILES),
                                           burst=self._rng.randrange(1, 3))
            if self._rng.random() < 0.3:
                events += collector.connect_ip(daemon, "10.0.0.1", 514)
        return events


def generate_benign_noise(num_sessions: int = 50, seed: int = 13,
                          start_time: float = 1_523_400_000.0
                          ) -> list[SystemEvent]:
    """Convenience helper: generate benign events with default settings."""
    generator = BenignWorkloadGenerator(WorkloadConfig(
        num_sessions=num_sessions, seed=seed, start_time=start_time))
    return generator.generate()


__all__ = [
    "WorkloadConfig",
    "BenignWorkloadGenerator",
    "generate_benign_noise",
]
