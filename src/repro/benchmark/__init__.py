"""Evaluation benchmark: 18 attack cases, metrics, and experiment drivers."""

from .case import AttackCase, AttackStep, BuiltCase, CaseBuilder, \
    step_signature
from .cases import ALL_CASES, case_ids, get_case
from .evaluation import (build_case_store, default_approaches, format_table,
                         run_conciseness, run_extraction_accuracy,
                         run_extraction_timing, run_fuzzy_comparison,
                         run_hunting_accuracy, run_query_execution,
                         run_query_execution_all)
from .metrics import (PRF, aggregate, score_hunting, score_ioc_entities,
                      score_ioc_relations, score_sets)
from .queries import CaseQueries, build_case_queries

__all__ = [
    "AttackCase",
    "AttackStep",
    "BuiltCase",
    "CaseBuilder",
    "step_signature",
    "ALL_CASES",
    "case_ids",
    "get_case",
    "build_case_store",
    "default_approaches",
    "format_table",
    "run_conciseness",
    "run_extraction_accuracy",
    "run_extraction_timing",
    "run_fuzzy_comparison",
    "run_hunting_accuracy",
    "run_query_execution",
    "run_query_execution_all",
    "PRF",
    "aggregate",
    "score_hunting",
    "score_ioc_entities",
    "score_ioc_relations",
    "score_sets",
    "CaseQueries",
    "build_case_queries",
]
