"""Experiment drivers that regenerate every table of the paper's evaluation.

Each ``run_*`` function corresponds to one table:

* :func:`run_extraction_accuracy`  -> Table V   (RQ1)
* :func:`run_hunting_accuracy`     -> Table VI  (RQ2)
* :func:`run_extraction_timing`    -> Table VII (RQ3)
* :func:`run_query_execution`      -> Table VIII (RQ4, exact mode)
* :func:`run_fuzzy_comparison`     -> Table IX  (RQ4, fuzzy mode vs Poirot)
* :func:`run_conciseness`          -> Table X   (RQ5)

The functions return plain data structures (lists of row dictionaries) so the
pytest-benchmark harnesses and the examples can both print the same rows the
paper reports.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..extraction.openie import ClauseOpenIE, PatternOpenIE
from ..extraction.pipeline import PipelineConfig, ThreatBehaviorExtractor
from ..hunting.threatraptor import ThreatRaptor
from ..storage.dualstore import DualStore
from ..tbql.conciseness import measure_conciseness
from ..tbql.executor import TBQLExecutor
from ..tbql.fuzzy import FuzzySearcher
from ..tbql.poirot import PoirotSearcher
from ..tbql.synthesis import TBQLSynthesizer
from .case import AttackCase, CaseBuilder, step_signature
from .cases import ALL_CASES
from .metrics import (PRF, aggregate, score_hunting, score_ioc_entities,
                      score_ioc_relations)
from .queries import CaseQueries, build_case_queries


# ---------------------------------------------------------------------------
# shared helpers
# ---------------------------------------------------------------------------


def build_case_store(case: AttackCase,
                     benign_sessions: int | None = None) -> tuple[DualStore,
                                                                  set]:
    """Materialize a case into a loaded store plus hunting ground truth."""
    built = CaseBuilder().build(case, benign_sessions=benign_sessions)
    store = DualStore()
    store.load_events(built.events)
    return store, built.attack_signatures


# ---------------------------------------------------------------------------
# Table V: accuracy of threat behavior extraction
# ---------------------------------------------------------------------------


@dataclass
class ExtractionApproach:
    """One row of Table V: an extraction approach to score."""

    name: str
    extract_entities: Callable[[str], list[str]]
    extract_relations: Callable[[str], list[tuple[str, str, str]]]


def _threatraptor_approach(ioc_protection: bool) -> ExtractionApproach:
    config = PipelineConfig(ioc_protection=ioc_protection)

    def entities(text: str) -> list[str]:
        return ThreatBehaviorExtractor(config).extract(text).ioc_values

    def relations(text: str) -> list[tuple[str, str, str]]:
        return ThreatBehaviorExtractor(config).extract(text).relation_triples

    suffix = "" if ioc_protection else " - IOC Protection"
    return ExtractionApproach(name=f"ThreatRaptor{suffix}",
                              extract_entities=entities,
                              extract_relations=relations)


def _openie_approach(name: str, cls, ioc_protection: bool
                     ) -> ExtractionApproach:
    def entities(text: str) -> list[str]:
        return cls(ioc_protection=ioc_protection).entities(text)

    def relations(text: str) -> list[tuple[str, str, str]]:
        return [(t.subject, t.relation, t.obj)
                for t in cls(ioc_protection=ioc_protection).extract(text)]

    suffix = " + IOC Protection" if ioc_protection else ""
    return ExtractionApproach(name=f"{name}{suffix}",
                              extract_entities=entities,
                              extract_relations=relations)


def default_approaches() -> list[ExtractionApproach]:
    """The six approaches compared in Table V."""
    return [
        _threatraptor_approach(ioc_protection=True),
        _threatraptor_approach(ioc_protection=False),
        _openie_approach("Stanford Open IE", ClauseOpenIE, False),
        _openie_approach("Stanford Open IE", ClauseOpenIE, True),
        _openie_approach("Open IE 5", PatternOpenIE, False),
        _openie_approach("Open IE 5", PatternOpenIE, True),
    ]


def run_extraction_accuracy(cases: Sequence[AttackCase] = ALL_CASES,
                            approaches: Iterable[ExtractionApproach] | None
                            = None) -> list[dict]:
    """Regenerate Table V: entity/relation extraction P/R/F1 per approach."""
    rows = []
    for approach in (approaches or default_approaches()):
        entity_scores: list[PRF] = []
        relation_scores: list[PRF] = []
        for case in cases:
            predicted_entities = approach.extract_entities(case.description)
            predicted_relations = approach.extract_relations(case.description)
            entity_scores.append(score_ioc_entities(
                predicted_entities, case.ground_truth_iocs))
            relation_scores.append(score_ioc_relations(
                predicted_relations, case.ground_truth_relations))
        entity_total = aggregate(entity_scores)
        relation_total = aggregate(relation_scores)
        rows.append({
            "approach": approach.name,
            "entity_precision": entity_total.precision,
            "entity_recall": entity_total.recall,
            "entity_f1": entity_total.f1,
            "relation_precision": relation_total.precision,
            "relation_recall": relation_total.recall,
            "relation_f1": relation_total.f1,
        })
    return rows


# ---------------------------------------------------------------------------
# Table VI: accuracy of threat hunting
# ---------------------------------------------------------------------------


def run_hunting_accuracy(cases: Sequence[AttackCase] = ALL_CASES,
                         benign_sessions: int | None = None) -> list[dict]:
    """Regenerate Table VI: per-case precision/recall of found events."""
    rows = []
    for case in cases:
        store, ground_truth = build_case_store(case, benign_sessions)
        raptor = ThreatRaptor(store=store)
        report = raptor.hunt(case.description)
        found = report.result.matched_event_signatures
        score = score_hunting(found, ground_truth)
        rows.append({
            "case": case.case_id,
            "tp": score.true_positives,
            "fp": score.false_positives,
            "fn": score.false_negatives,
            "precision": score.precision,
            "recall": score.recall,
            "f1": score.f1,
            "expected_misses": len({step_signature(step)
                                    for step in case.expected_misses}),
        })
        store.close()
    total = aggregate(PRF(row["tp"], row["fp"], row["fn"]) for row in rows)
    rows.append({"case": "Total", "tp": total.true_positives,
                 "fp": total.false_positives, "fn": total.false_negatives,
                 "precision": total.precision, "recall": total.recall,
                 "f1": total.f1, "expected_misses": None})
    return rows


# ---------------------------------------------------------------------------
# Table VII: efficiency of threat behavior extraction
# ---------------------------------------------------------------------------


def run_extraction_timing(cases: Sequence[AttackCase] = ALL_CASES
                          ) -> list[dict]:
    """Regenerate Table VII: per-stage execution time per case."""
    rows = []
    for case in cases:
        extractor = ThreatBehaviorExtractor()
        extraction = extractor.extract(case.description)
        synthesis_start = time.perf_counter()
        TBQLSynthesizer().synthesize(extraction.graph)
        synthesis_seconds = time.perf_counter() - synthesis_start

        baseline_times = {}
        for name, cls, protection in (
                ("stanford_openie", ClauseOpenIE, False),
                ("stanford_openie_prot", ClauseOpenIE, True),
                ("openie5", PatternOpenIE, False),
                ("openie5_prot", PatternOpenIE, True)):
            start = time.perf_counter()
            cls(ioc_protection=protection).extract(case.description)
            baseline_times[name] = time.perf_counter() - start
        rows.append({
            "case": case.case_id,
            "text_to_entities_relations": extraction.extraction_seconds,
            "entities_relations_to_graph": extraction.graph_seconds,
            "graph_to_tbql": synthesis_seconds,
            **baseline_times,
        })
    return rows


# ---------------------------------------------------------------------------
# Table VIII: efficiency of TBQL query execution (exact mode)
# ---------------------------------------------------------------------------


def run_query_execution(case: AttackCase, rounds: int = 5,
                        benign_sessions: int | None = None,
                        queries: CaseQueries | None = None) -> dict:
    """Regenerate one row of Table VIII for ``case``.

    Returns mean/std execution time over ``rounds`` rounds for the four
    equivalent queries: scheduled TBQL, giant SQL, scheduled TBQL with
    length-1 path patterns, and giant Cypher.
    """
    store, _ = build_case_store(case, benign_sessions)
    queries = queries or build_case_queries(case)
    executor = TBQLExecutor(store)

    def time_call(callable_) -> tuple[float, float]:
        samples = []
        for _ in range(rounds):
            start = time.perf_counter()
            callable_()
            samples.append(time.perf_counter() - start)
        mean = statistics.fmean(samples)
        std = statistics.pstdev(samples) if len(samples) > 1 else 0.0
        return mean, std

    tbql_mean, tbql_std = time_call(lambda: executor.execute(queries.tbql))
    sql_mean, sql_std = time_call(
        lambda: store.execute_sql(*_split_sql(queries.sql)))
    path_mean, path_std = time_call(
        lambda: executor.execute(queries.tbql_path))
    cypher_mean, cypher_std = time_call(
        lambda: store.execute_cypher(queries.cypher))
    store.close()
    return {
        "case": case.case_id,
        "tbql_mean": tbql_mean, "tbql_std": tbql_std,
        "sql_mean": sql_mean, "sql_std": sql_std,
        "tbql_path_mean": path_mean, "tbql_path_std": path_std,
        "cypher_mean": cypher_mean, "cypher_std": cypher_std,
    }


def _split_sql(sql_text: str) -> tuple[str, list]:
    return sql_text, []


def run_query_execution_all(cases: Sequence[AttackCase] = ALL_CASES,
                            rounds: int = 3,
                            benign_sessions: int | None = None
                            ) -> list[dict]:
    """Regenerate Table VIII for every case plus the total row."""
    rows = [run_query_execution(case, rounds=rounds,
                                benign_sessions=benign_sessions)
            for case in cases]
    totals = {"case": "Total"}
    for key in ("tbql_mean", "sql_mean", "tbql_path_mean", "cypher_mean"):
        totals[key] = sum(row[key] for row in rows)
    rows.append(totals)
    return rows


# ---------------------------------------------------------------------------
# Table IX: fuzzy search mode vs Poirot
# ---------------------------------------------------------------------------


def run_fuzzy_comparison(case: AttackCase,
                         benign_sessions: int | None = None,
                         queries: CaseQueries | None = None) -> dict:
    """Regenerate one row of Table IX for ``case``."""
    store, ground_truth = build_case_store(case, benign_sessions)
    queries = queries or build_case_queries(case)
    fuzzy = FuzzySearcher(store).search(queries.tbql)
    poirot = PoirotSearcher(store).search(queries.tbql)
    store.close()
    return {
        "case": case.case_id,
        "fuzzy_loading": fuzzy.loading_seconds,
        "fuzzy_preprocessing": fuzzy.preprocessing_seconds,
        "fuzzy_searching": fuzzy.searching_seconds,
        "fuzzy_total": fuzzy.total_seconds,
        "fuzzy_alignments": len(fuzzy.alignments),
        "poirot_loading": poirot.loading_seconds,
        "poirot_preprocessing": poirot.preprocessing_seconds,
        "poirot_searching": poirot.searching_seconds,
        "poirot_total": poirot.total_seconds,
        "poirot_alignments": len(poirot.alignments),
        "ground_truth_events": len(ground_truth),
    }


# ---------------------------------------------------------------------------
# Table X: conciseness
# ---------------------------------------------------------------------------


def run_conciseness(cases: Sequence[AttackCase] = ALL_CASES) -> list[dict]:
    """Regenerate Table X: characters and words per query language."""
    rows = []
    totals = {"tbql_chars": 0, "tbql_words": 0, "sql_chars": 0,
              "sql_words": 0, "path_chars": 0, "path_words": 0,
              "cypher_chars": 0, "cypher_words": 0, "patterns": 0}
    for case in cases:
        queries = build_case_queries(case)
        tbql = measure_conciseness(queries.tbql)
        sql = measure_conciseness(queries.sql)
        path = measure_conciseness(queries.tbql_path)
        cypher = measure_conciseness(queries.cypher)
        rows.append({
            "case": case.case_id,
            "patterns": queries.pattern_count,
            "tbql_chars": tbql.characters, "tbql_words": tbql.words,
            "sql_chars": sql.characters, "sql_words": sql.words,
            "path_chars": path.characters, "path_words": path.words,
            "cypher_chars": cypher.characters, "cypher_words": cypher.words,
        })
        totals["patterns"] += queries.pattern_count
        totals["tbql_chars"] += tbql.characters
        totals["tbql_words"] += tbql.words
        totals["sql_chars"] += sql.characters
        totals["sql_words"] += sql.words
        totals["path_chars"] += path.characters
        totals["path_words"] += path.words
        totals["cypher_chars"] += cypher.characters
        totals["cypher_words"] += cypher.words
    rows.append({"case": "Total", **totals})
    return rows


# ---------------------------------------------------------------------------
# pretty-printing helpers shared by benches and examples
# ---------------------------------------------------------------------------


def format_table(rows: list[dict], columns: list[str] | None = None,
                 floatfmt: str = "{:.2f}") -> str:
    """Render rows as a fixed-width text table (for bench output)."""
    if not rows:
        return "(no rows)"
    columns = columns or list(rows[0].keys())
    rendered: list[list[str]] = []
    for row in rows:
        line = []
        for column in columns:
            value = row.get(column, "")
            if isinstance(value, float):
                line.append(floatfmt.format(value))
            else:
                line.append(str(value))
        rendered.append(line)
    widths = [max(len(columns[i]), max(len(line[i]) for line in rendered))
              for i in range(len(columns))]
    header = "  ".join(column.ljust(width)
                       for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = "\n".join("  ".join(cell.ljust(width)
                               for cell, width in zip(line, widths))
                     for line in rendered)
    return "\n".join([header, separator, body])


__all__ = [
    "ExtractionApproach",
    "default_approaches",
    "build_case_store",
    "run_extraction_accuracy",
    "run_hunting_accuracy",
    "run_extraction_timing",
    "run_query_execution",
    "run_query_execution_all",
    "run_fuzzy_comparison",
    "run_conciseness",
    "format_table",
]
