"""Precision / recall / F1 metrics used throughout the evaluation.

Three scorers mirror the paper's tables:

* IOC entity extraction (Table V, entity columns),
* IOC relation extraction (Table V, relation columns),
* threat hunting accuracy — malicious system events found by the synthesized
  query vs. the ground-truth events of the attack (Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence


@dataclass(frozen=True)
class PRF:
    """Precision, recall, and F1 with the underlying counts."""

    true_positives: int
    false_positives: int
    false_negatives: int

    @property
    def precision(self) -> float:
        denominator = self.true_positives + self.false_positives
        if denominator == 0:
            return 1.0 if self.false_negatives == 0 else 0.0
        return self.true_positives / denominator

    @property
    def recall(self) -> float:
        denominator = self.true_positives + self.false_negatives
        if denominator == 0:
            return 1.0
        return self.true_positives / denominator

    @property
    def f1(self) -> float:
        precision, recall = self.precision, self.recall
        if precision + recall == 0:
            return 0.0
        return 2 * precision * recall / (precision + recall)

    def __add__(self, other: "PRF") -> "PRF":
        return PRF(self.true_positives + other.true_positives,
                   self.false_positives + other.false_positives,
                   self.false_negatives + other.false_negatives)

    def as_dict(self) -> dict:
        return {"precision": self.precision, "recall": self.recall,
                "f1": self.f1, "tp": self.true_positives,
                "fp": self.false_positives, "fn": self.false_negatives}


def score_sets(predicted: Iterable, expected: Iterable) -> PRF:
    """Exact-match set scoring."""
    predicted_set = set(predicted)
    expected_set = set(expected)
    true_positives = len(predicted_set & expected_set)
    return PRF(true_positives=true_positives,
               false_positives=len(predicted_set) - true_positives,
               false_negatives=len(expected_set) - true_positives)


def _normalize_ioc(value: str) -> str:
    return value.strip().strip("\"'").rstrip("/").lower()


def score_ioc_entities(predicted: Sequence[str],
                       expected: Sequence[str]) -> PRF:
    """Score extracted IOC entities against the labeled ground truth.

    Matching is case-insensitive after stripping quotes and trailing slashes;
    a predicted IOC also counts as correct when it equals a labeled IOC up to
    a leading directory prefix (the label "/tmp/upload.tar" vs the mention
    "upload.tar"), mirroring how the paper's labels treat path variants.
    """
    expected_normalized = [_normalize_ioc(value) for value in expected]
    matched_expected: set[int] = set()
    true_positives = 0
    false_positives = 0
    for value in {_normalize_ioc(value) for value in predicted}:
        match_index = None
        for index, label in enumerate(expected_normalized):
            if index in matched_expected:
                continue
            if value == label or label.endswith("/" + value) or \
                    value.endswith("/" + label):
                match_index = index
                break
        if match_index is None:
            false_positives += 1
        else:
            matched_expected.add(match_index)
            true_positives += 1
    false_negatives = len(expected_normalized) - len(matched_expected)
    return PRF(true_positives, false_positives, false_negatives)


def score_ioc_relations(predicted: Sequence[tuple[str, str, str]],
                        expected: Sequence[tuple[str, str, str]]) -> PRF:
    """Score extracted (subject, verb, object) triples against labels."""
    def normalize(triple: tuple[str, str, str]) -> tuple[str, str, str]:
        subject, verb, obj = triple
        return (_normalize_ioc(subject), verb.strip().lower(),
                _normalize_ioc(obj))
    return score_sets([normalize(t) for t in predicted],
                      [normalize(t) for t in expected])


def score_hunting(found_signatures: Iterable[tuple[str, str, str]],
                  ground_truth: Iterable[tuple[str, str, str]]) -> PRF:
    """Score matched system events against ground-truth attack events.

    Signatures are (subject name, operation, object name) triples; counts
    are per distinct signature, mirroring Table VI's per-event counting.
    """
    def normalize(signature: tuple[str, str, str]) -> tuple[str, str, str]:
        subject, operation, obj = signature
        return (str(subject).lower(), str(operation).lower(),
                str(obj).lower())
    return score_sets([normalize(s) for s in found_signatures],
                      [normalize(s) for s in ground_truth])


def aggregate(scores: Iterable[PRF]) -> PRF:
    """Micro-average: sum the TP/FP/FN counts across cases."""
    total = PRF(0, 0, 0)
    for score in scores:
        total = total + score
    return total


__all__ = ["PRF", "score_sets", "score_ioc_entities", "score_ioc_relations",
           "score_hunting", "aggregate"]
