"""The 18-case evaluation benchmark (Table IV).

Fifteen cases are modeled on the public DARPA TC Engagement-3 attack
scenarios the paper selected (ClearScope / FiveDirections / THEIA / TRACE
combinations of phishing e-mails, Firefox backdoors, browser extensions, and
Drakon payloads); three are the multi-step intrusive attacks the authors
performed themselves (password cracking and data leakage after Shellshock
penetration, and VPNFilter).

Because the real TC logs and ground-truth report are not redistributable,
each case here carries a scripted attack (its hunting ground truth), an OSCTI
description written in the style of the TC ground-truth report, and labeled
IOC / relation annotations for the extraction accuracy experiments.

Two cases intentionally reproduce known deviations reported in the paper:

* ``tc_trace_1`` / ``tc_trace_4``: a "run"/"spawn" relation is ambiguous
  between a file-execute and a process-start event; the default synthesis
  plan picks the file-execute pattern and misses the process-start ground
  truth (Table VI's recall losses);
* ``tc_fivedirections_3`` / ``tc_trace_3``: the OSCTI text deviates from the
  IOCs present in the logs, so the exact search finds nothing and the fuzzy
  search mode is required.
"""

from __future__ import annotations

from ..errors import BenchmarkError
from .case import AttackCase

# ---------------------------------------------------------------------------
# ClearScope (Android) cases
# ---------------------------------------------------------------------------

_TC_CLEARSCOPE_1 = AttackCase(
    case_id="tc_clearscope_1",
    name="20180406 1500 ClearScope - Phishing E-mail Link",
    description=(
        "The victim received a phishing e-mail containing a malicious link "
        "on the Android device. "
        "com.android.email downloaded the malicious application "
        "MsgApp-instr.apk from a remote staging server. "
        "com.android.email then executed MsgApp-instr.apk to install the "
        "backdoor on the device."),
    ground_truth_iocs=("com.android.email", "MsgApp-instr.apk"),
    ground_truth_relations=(
        ("com.android.email", "download", "MsgApp-instr.apk"),
        ("com.android.email", "execute", "MsgApp-instr.apk"),
    ),
    steps=(
        ("proc:com.android.email", "write", "file:MsgApp-instr.apk"),
        ("proc:com.android.email", "execute", "file:MsgApp-instr.apk"),
    ),
)

_TC_CLEARSCOPE_2 = AttackCase(
    case_id="tc_clearscope_2",
    name="20180411 1400 ClearScope - Firefox Backdoor w/ Drakon In-Memory",
    description=(
        "The attacker exploited a backdoor in the mobile Firefox browser. "
        "org.mozilla.firefox connected to 161.116.88.72. "
        "It wrote the staging payload to /data/local/tmp/drakon.so for the "
        "in-memory loader."),
    ground_truth_iocs=("org.mozilla.firefox", "161.116.88.72",
                       "/data/local/tmp/drakon.so"),
    ground_truth_relations=(
        ("org.mozilla.firefox", "connect", "161.116.88.72"),
        ("org.mozilla.firefox", "write", "/data/local/tmp/drakon.so"),
    ),
    steps=(
        ("proc:org.mozilla.firefox", "connect", "ip:161.116.88.72"),
        ("proc:org.mozilla.firefox", "write",
         "file:/data/local/tmp/drakon.so"),
    ),
)

_TC_CLEARSCOPE_3 = AttackCase(
    case_id="tc_clearscope_3",
    name="20180413 ClearScope",
    description=(
        "During the engagement, the malicious application "
        "com.android.lockwatch read the contacts database "
        "/data/data/contacts.db on the compromised phone."),
    ground_truth_iocs=("com.android.lockwatch", "/data/data/contacts.db"),
    ground_truth_relations=(
        ("com.android.lockwatch", "read", "/data/data/contacts.db"),
    ),
    steps=(
        ("proc:com.android.lockwatch", "read", "file:/data/data/contacts.db"),
    ),
    benign_sessions=30,
)

# ---------------------------------------------------------------------------
# FiveDirections (Windows) cases
# ---------------------------------------------------------------------------

_TC_FIVEDIRECTIONS_1 = AttackCase(
    case_id="tc_fivedirections_1",
    name="20180409 1500 FiveDirections - Phishing E-mail w/ Excel Macro",
    description=(
        "The victim opened a phishing e-mail carrying a malicious Excel "
        "attachment. "
        "excel.exe wrote the macro dropper payload.exe to the temporary "
        "folder. "
        "payload.exe connected to 132.197.158.98. "
        "payload.exe read the browser credential store logins.json."),
    ground_truth_iocs=("excel.exe", "payload.exe", "132.197.158.98",
                       "logins.json"),
    ground_truth_relations=(
        ("excel.exe", "write", "payload.exe"),
        ("payload.exe", "connect", "132.197.158.98"),
        ("payload.exe", "read", "logins.json"),
    ),
    steps=(
        ("proc:excel.exe", "write", "file:payload.exe"),
        ("proc:payload.exe", "connect", "ip:132.197.158.98"),
        ("proc:payload.exe", "read", "file:logins.json"),
    ),
    os_family="windows",
)

_TC_FIVEDIRECTIONS_2 = AttackCase(
    case_id="tc_fivedirections_2",
    name="20180411 1000 FiveDirections - Firefox Backdoor w/ Drakon "
         "In-Memory",
    description=(
        "The attacker used a Firefox backdoor to stage the Drakon loader. "
        "firefox.exe connected to 139.123.0.113. "
        "firefox.exe wrote the in-memory loader drakon_loader.dll to the "
        "profile directory. "
        "svchost.exe read drakon_loader.dll during the injection."),
    ground_truth_iocs=("firefox.exe", "139.123.0.113", "drakon_loader.dll",
                       "svchost.exe"),
    ground_truth_relations=(
        ("firefox.exe", "connect", "139.123.0.113"),
        ("firefox.exe", "write", "drakon_loader.dll"),
        ("svchost.exe", "read", "drakon_loader.dll"),
    ),
    steps=(
        ("proc:firefox.exe", "connect", "ip:139.123.0.113"),
        ("proc:firefox.exe", "write", "file:drakon_loader.dll"),
        ("proc:svchost.exe", "read", "file:drakon_loader.dll"),
    ),
    os_family="windows",
)

_TC_FIVEDIRECTIONS_3 = AttackCase(
    case_id="tc_fivedirections_3",
    name="20180412 1100 FiveDirections - Browser Extension w/ Drakon "
         "Dropper",
    description=(
        "A malicious browser extension delivered the Drakon dropper. "
        "dropper.exe wrote the fake password manager pass_mgr.exe to the "
        "extensions folder. "
        "pass_mgr.exe connected to 104.228.117.212."),
    ground_truth_iocs=("dropper.exe", "pass_mgr.exe", "104.228.117.212"),
    ground_truth_relations=(
        ("dropper.exe", "write", "pass_mgr.exe"),
        ("pass_mgr.exe", "connect", "104.228.117.212"),
    ),
    # The activities on the host used different artifact names than the
    # report (re-purposed tooling), so the exact search retrieves nothing.
    steps=(
        ("proc:dropper_x64.exe", "write", "file:pass_mgr_v2.exe"),
        ("proc:pass_mgr_v2.exe", "connect", "ip:104.228.119.90"),
        ("proc:pass_mgr_v2.exe", "read", "file:logins.json"),
    ),
    expected_misses=(
        ("proc:dropper_x64.exe", "write", "file:pass_mgr_v2.exe"),
        ("proc:pass_mgr_v2.exe", "connect", "ip:104.228.119.90"),
        ("proc:pass_mgr_v2.exe", "read", "file:logins.json"),
    ),
    os_family="windows",
)

# ---------------------------------------------------------------------------
# THEIA (Linux) cases
# ---------------------------------------------------------------------------

_TC_THEIA_1 = AttackCase(
    case_id="tc_theia_1",
    name="20180410 1400 THEIA - Firefox Backdoor w/ Drakon In-Memory",
    description=(
        "The attacker exploited a backdoor in the Firefox browser on the "
        "THEIA host. "
        "/usr/bin/firefox connected to 141.43.176.203. "
        "/usr/bin/firefox wrote the Drakon payload to /tmp/drakon. "
        "/tmp/drakon executed /bin/dash to spawn an interactive shell."),
    ground_truth_iocs=("/usr/bin/firefox", "141.43.176.203", "/tmp/drakon",
                       "/bin/dash"),
    ground_truth_relations=(
        ("/usr/bin/firefox", "connect", "141.43.176.203"),
        ("/usr/bin/firefox", "write", "/tmp/drakon"),
        ("/tmp/drakon", "execute", "/bin/dash"),
    ),
    steps=(
        ("proc:/usr/bin/firefox", "connect", "ip:141.43.176.203"),
        ("proc:/usr/bin/firefox", "write", "file:/tmp/drakon"),
        ("proc:/tmp/drakon", "execute", "file:/bin/dash"),
    ),
    benign_sessions=60,
)

_TC_THEIA_2 = AttackCase(
    case_id="tc_theia_2",
    name="20180410 1300 THEIA - Phishing Email w/ Link",
    description=(
        "The victim clicked a phishing link delivered over e-mail. "
        "/usr/bin/thunderbird read the mailbox file /var/mail/victim. "
        "/usr/bin/firefox downloaded the stage one malware /home/admin/clean "
        "from 146.153.68.151."),
    ground_truth_iocs=("/usr/bin/thunderbird", "/var/mail/victim",
                       "/usr/bin/firefox", "/home/admin/clean",
                       "146.153.68.151"),
    ground_truth_relations=(
        ("/usr/bin/thunderbird", "read", "/var/mail/victim"),
        ("/usr/bin/firefox", "download", "/home/admin/clean"),
        ("/usr/bin/firefox", "download", "146.153.68.151"),
    ),
    steps=(
        ("proc:/usr/bin/thunderbird", "read", "file:/var/mail/victim"),
        ("proc:/usr/bin/firefox", "write", "file:/home/admin/clean"),
        ("proc:/usr/bin/firefox", "receive", "ip:146.153.68.151"),
    ),
    benign_sessions=60,
)

_TC_THEIA_3 = AttackCase(
    case_id="tc_theia_3",
    name="20180412 THEIA - Browser Extension w/ Drakon Dropper",
    description=(
        "The attacker delivered a malicious browser extension to the THEIA "
        "host. "
        "/usr/bin/firefox wrote the extension dropper "
        "/home/admin/profile/gtcache to disk. "
        "/home/admin/profile/gtcache connected to 141.43.176.203. "
        "It wrote the second stage implant to /var/log/mail. "
        "/var/log/mail read the password file /etc/shadow. "
        "/var/log/mail sent the stolen data to 141.43.176.203."),
    ground_truth_iocs=("/usr/bin/firefox", "/home/admin/profile/gtcache",
                       "141.43.176.203", "/var/log/mail", "/etc/shadow"),
    ground_truth_relations=(
        ("/usr/bin/firefox", "write", "/home/admin/profile/gtcache"),
        ("/home/admin/profile/gtcache", "connect", "141.43.176.203"),
        ("/home/admin/profile/gtcache", "write", "/var/log/mail"),
        ("/var/log/mail", "read", "/etc/shadow"),
        ("/var/log/mail", "send", "141.43.176.203"),
    ),
    steps=(
        ("proc:/usr/bin/firefox", "write", "file:/home/admin/profile/gtcache"),
        ("proc:/home/admin/profile/gtcache", "connect", "ip:141.43.176.203"),
        ("proc:/home/admin/profile/gtcache", "write", "file:/var/log/mail"),
        ("proc:/var/log/mail", "read", "file:/etc/shadow"),
        ("proc:/var/log/mail", "send", "ip:141.43.176.203"),
    ),
    benign_sessions=60,
)

_TC_THEIA_4 = AttackCase(
    case_id="tc_theia_4",
    name="20180413 1400 THEIA - Phishing E-mail w/ Executable Attachment",
    description=(
        "The victim saved the executable attachment of a phishing e-mail. "
        "/usr/bin/thunderbird wrote the executable attachment "
        "/home/admin/mail_attach to disk. "
        "/home/admin/mail_attach connected to 149.52.110.4."),
    ground_truth_iocs=("/usr/bin/thunderbird", "/home/admin/mail_attach",
                       "149.52.110.4"),
    ground_truth_relations=(
        ("/usr/bin/thunderbird", "write", "/home/admin/mail_attach"),
        ("/home/admin/mail_attach", "connect", "149.52.110.4"),
    ),
    steps=(
        ("proc:/usr/bin/thunderbird", "write", "file:/home/admin/mail_attach"),
        ("proc:/home/admin/mail_attach", "connect", "ip:149.52.110.4"),
    ),
    benign_sessions=60,
)

# ---------------------------------------------------------------------------
# TRACE (Linux) cases
# ---------------------------------------------------------------------------

_TC_TRACE_1 = AttackCase(
    case_id="tc_trace_1",
    name="20180410 1000 TRACE - Firefox Backdoor w/ Drakon In-Memory",
    description=(
        "The attacker exploited the Firefox backdoor on the TRACE host. "
        "/usr/bin/firefox connected to 145.199.103.57. "
        "/usr/bin/firefox wrote the loader to /home/admin/cache. "
        "/home/admin/cache ran /home/admin/cache to stay resident. "
        "/home/admin/cache read the preference file /etc/firefox/prefs.js."),
    ground_truth_iocs=("/usr/bin/firefox", "145.199.103.57",
                       "/home/admin/cache", "/etc/firefox/prefs.js"),
    ground_truth_relations=(
        ("/usr/bin/firefox", "connect", "145.199.103.57"),
        ("/usr/bin/firefox", "write", "/home/admin/cache"),
        ("/home/admin/cache", "run", "/home/admin/cache"),
        ("/home/admin/cache", "read", "/etc/firefox/prefs.js"),
    ),
    # The "run" self-loop is ambiguous: the default synthesis plan emits a
    # file-execute pattern while the ground truth is a process-start event,
    # so those events are missed (the paper's tc_trace_1 false negatives).
    steps=(
        ("proc:/usr/bin/firefox", "connect", "ip:145.199.103.57"),
        ("proc:/usr/bin/firefox", "write", "file:/home/admin/cache"),
        ("proc:/home/admin/cache", "start", "proc:/home/admin/cache"),
        ("proc:/home/admin/cache", "read", "file:/etc/firefox/prefs.js"),
    ),
    expected_misses=(
        ("proc:/home/admin/cache", "start", "proc:/home/admin/cache"),
    ),
    benign_sessions=80,
)

_TC_TRACE_2 = AttackCase(
    case_id="tc_trace_2",
    name="20180410 1200 TRACE - Phishing E-mail Link",
    description=(
        "The victim followed a phishing link from the mail client. "
        "/usr/bin/thunderbird read the phishing mail /var/spool/mail/admin. "
        "/usr/bin/firefox downloaded the dropper /tmp/tcexec from "
        "145.199.103.57."),
    ground_truth_iocs=("/usr/bin/thunderbird", "/var/spool/mail/admin",
                       "/usr/bin/firefox", "/tmp/tcexec", "145.199.103.57"),
    ground_truth_relations=(
        ("/usr/bin/thunderbird", "read", "/var/spool/mail/admin"),
        ("/usr/bin/firefox", "download", "/tmp/tcexec"),
        ("/usr/bin/firefox", "download", "145.199.103.57"),
    ),
    steps=(
        ("proc:/usr/bin/thunderbird", "read", "file:/var/spool/mail/admin"),
        ("proc:/usr/bin/firefox", "write", "file:/tmp/tcexec"),
        ("proc:/usr/bin/firefox", "receive", "ip:145.199.103.57"),
    ),
    benign_sessions=80,
)

_TC_TRACE_3 = AttackCase(
    case_id="tc_trace_3",
    name="20180412 1300 TRACE - Browser Extension w/ Drakon Dropper",
    description=(
        "A malicious browser extension staged the Drakon dropper. "
        "/usr/bin/firefox wrote the extension dropper ext_cache.so to the "
        "profile directory."),
    ground_truth_iocs=("/usr/bin/firefox", "ext_cache.so"),
    ground_truth_relations=(
        ("/usr/bin/firefox", "write", "ext_cache.so"),
    ),
    # On the host the dropper was written under a different name, so the
    # exact search retrieves nothing for this case (0 found, 2 missed).
    steps=(
        ("proc:/usr/bin/firefox", "write", "file:/home/admin/.cache/ztmp"),
        ("proc:/home/admin/.cache/ztmp", "connect", "ip:145.199.103.57"),
    ),
    expected_misses=(
        ("proc:/usr/bin/firefox", "write", "file:/home/admin/.cache/ztmp"),
        ("proc:/home/admin/.cache/ztmp", "connect", "ip:145.199.103.57"),
    ),
    benign_sessions=80,
)

_TC_TRACE_4 = AttackCase(
    case_id="tc_trace_4",
    name="20180413 1200 TRACE - Pine Backdoor w/ Drakon Dropper",
    description=(
        "The attacker used a backdoored Pine mail client. "
        "/usr/bin/pine spawned the dropper process /tmp/tcexec. "
        "/tmp/tcexec connected to 61.167.39.128. "
        "/tmp/tcexec wrote the implant to /var/tmp/nginx."),
    ground_truth_iocs=("/usr/bin/pine", "/tmp/tcexec", "61.167.39.128",
                       "/var/tmp/nginx"),
    ground_truth_relations=(
        ("/usr/bin/pine", "spawn", "/tmp/tcexec"),
        ("/tmp/tcexec", "connect", "61.167.39.128"),
        ("/tmp/tcexec", "write", "/var/tmp/nginx"),
    ),
    steps=(
        ("proc:/usr/bin/pine", "start", "proc:/tmp/tcexec"),
        ("proc:/tmp/tcexec", "connect", "ip:61.167.39.128"),
        ("proc:/tmp/tcexec", "write", "file:/var/tmp/nginx"),
    ),
    expected_misses=(
        ("proc:/usr/bin/pine", "start", "proc:/tmp/tcexec"),
    ),
    benign_sessions=80,
)

_TC_TRACE_5 = AttackCase(
    case_id="tc_trace_5",
    name="20180413 1400 TRACE - Phishing E-mail w/ Executable Attachment",
    description=(
        "The victim opened a phishing e-mail and saved the attachment. "
        "/usr/bin/pine wrote the executable attachment /tmp/tcexec to disk. "
        "/tmp/tcexec connected to 61.167.39.128."),
    ground_truth_iocs=("/usr/bin/pine", "/tmp/tcexec", "61.167.39.128"),
    ground_truth_relations=(
        ("/usr/bin/pine", "write", "/tmp/tcexec"),
        ("/tmp/tcexec", "connect", "61.167.39.128"),
    ),
    steps=(
        ("proc:/usr/bin/pine", "write", "file:/tmp/tcexec"),
        ("proc:/tmp/tcexec", "connect", "ip:61.167.39.128"),
    ),
    benign_sessions=80,
)

# ---------------------------------------------------------------------------
# Multi-step intrusive attacks performed on the testbed
# ---------------------------------------------------------------------------

_PASSWORD_CRACK = AttackCase(
    case_id="password_crack",
    name="Password Cracking After Shellshock Penetration",
    description=(
        "The attacker penetrated the victim host by exploiting the "
        "Shellshock vulnerability in the web server. "
        "/usr/lib/cgi-bin/default.cgi connected to 108.177.122.189. "
        "It wrote the dropped script to /tmp/payload.sh. "
        "/bin/bash executed /tmp/payload.sh to gain a foothold.\n\n"
        "The attacker then connected to cloud services to retrieve the "
        "command and control address. "
        "/usr/bin/wget downloaded the image file /tmp/dropbox.jpg from "
        "162.125.6.1. "
        "The C2 address was encoded in the EXIF metadata of the image. "
        "/usr/bin/wget downloaded the password cracker /tmp/john from "
        "192.168.29.128. "
        "/bin/bash executed /tmp/john against the shadow files. "
        "/tmp/john read the shadow file /etc/shadow."),
    ground_truth_iocs=("/usr/lib/cgi-bin/default.cgi", "108.177.122.189",
                       "/tmp/payload.sh", "/bin/bash", "/usr/bin/wget",
                       "/tmp/dropbox.jpg", "162.125.6.1", "/tmp/john",
                       "192.168.29.128", "/etc/shadow"),
    ground_truth_relations=(
        ("/usr/lib/cgi-bin/default.cgi", "connect", "108.177.122.189"),
        ("/usr/lib/cgi-bin/default.cgi", "write", "/tmp/payload.sh"),
        ("/bin/bash", "execute", "/tmp/payload.sh"),
        ("/usr/bin/wget", "download", "/tmp/dropbox.jpg"),
        ("/usr/bin/wget", "download", "162.125.6.1"),
        ("/usr/bin/wget", "download", "/tmp/john"),
        ("/usr/bin/wget", "download", "192.168.29.128"),
        ("/bin/bash", "execute", "/tmp/john"),
        ("/tmp/john", "read", "/etc/shadow"),
    ),
    steps=(
        ("proc:/usr/lib/cgi-bin/default.cgi", "connect",
         "ip:108.177.122.189"),
        ("proc:/usr/lib/cgi-bin/default.cgi", "write", "file:/tmp/payload.sh"),
        ("proc:/bin/bash", "execute", "file:/tmp/payload.sh"),
        ("proc:/usr/bin/wget", "write", "file:/tmp/dropbox.jpg"),
        ("proc:/usr/bin/wget", "receive", "ip:162.125.6.1"),
        ("proc:/usr/bin/wget", "write", "file:/tmp/john"),
        ("proc:/usr/bin/wget", "receive", "ip:192.168.29.128"),
        ("proc:/bin/bash", "execute", "file:/tmp/john"),
        ("proc:/tmp/john", "read", "file:/etc/shadow"),
        # Activities the report does not describe (cleanup), so the query
        # does not cover them: they lower recall as in Table VI.
        ("proc:/tmp/john", "write", "file:/tmp/john.pot"),
        ("proc:/bin/bash", "delete", "file:/tmp/payload.sh"),
    ),
    expected_misses=(
        ("proc:/tmp/john", "write", "file:/tmp/john.pot"),
        ("proc:/bin/bash", "delete", "file:/tmp/payload.sh"),
    ),
    benign_sessions=100,
)

_DATA_LEAK = AttackCase(
    case_id="data_leak",
    name="Data Leakage After Shellshock Penetration",
    description=(
        "After the lateral movement stage, the attacker attempts to steal "
        "valuable assets from the host. This stage mainly involves the "
        "behaviors of local and remote file system scanning activities, "
        "copying and compressing of important files, and transferring the "
        "files to its C2 host.\n\n"
        "As a first step, the attacker used /bin/tar to read user "
        "credentials from /etc/passwd. "
        "It wrote the gathered information to a file /tmp/upload.tar. "
        "Then, the attacker leveraged /bin/bzip2 utility to compress the "
        "tar file. "
        "/bin/bzip2 read from /tmp/upload.tar and wrote to "
        "/tmp/upload.tar.bz2. "
        "/usr/bin/gpg read from /tmp/upload.tar.bz2 and wrote the encrypted "
        "information to /tmp/upload. "
        "Finally, the attacker used /usr/bin/curl to read the data from "
        "/tmp/upload. "
        "He leaked the gathered sensitive information back to the C2 host "
        "by using /usr/bin/curl to connect to 192.168.29.128."),
    ground_truth_iocs=("/bin/tar", "/etc/passwd", "/tmp/upload.tar",
                       "/bin/bzip2", "/tmp/upload.tar.bz2", "/usr/bin/gpg",
                       "/tmp/upload", "/usr/bin/curl", "192.168.29.128"),
    ground_truth_relations=(
        ("/bin/tar", "read", "/etc/passwd"),
        ("/bin/tar", "write", "/tmp/upload.tar"),
        ("/bin/bzip2", "read", "/tmp/upload.tar"),
        ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
        ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
        ("/usr/bin/gpg", "write", "/tmp/upload"),
        ("/usr/bin/curl", "read", "/tmp/upload"),
        ("/usr/bin/curl", "connect", "192.168.29.128"),
    ),
    steps=(
        ("proc:/bin/tar", "read", "file:/etc/passwd"),
        ("proc:/bin/tar", "write", "file:/tmp/upload.tar"),
        ("proc:/bin/bzip2", "read", "file:/tmp/upload.tar"),
        ("proc:/bin/bzip2", "write", "file:/tmp/upload.tar.bz2"),
        ("proc:/usr/bin/gpg", "read", "file:/tmp/upload.tar.bz2"),
        ("proc:/usr/bin/gpg", "write", "file:/tmp/upload"),
        ("proc:/usr/bin/curl", "read", "file:/tmp/upload"),
        ("proc:/usr/bin/curl", "connect", "ip:192.168.29.128"),
        # File-system scanning activities the report only summarizes.
        ("proc:/bin/ls", "read", "file:/home/admin"),
        ("proc:/usr/bin/find", "read", "file:/home/admin/docs"),
    ),
    expected_misses=(
        ("proc:/bin/ls", "read", "file:/home/admin"),
        ("proc:/usr/bin/find", "read", "file:/home/admin/docs"),
    ),
    benign_sessions=100,
)

_VPNFILTER = AttackCase(
    case_id="vpnfilter",
    name="VPNFilter",
    description=(
        "The attacker utilized the notorious VPNFilter malware to maintain "
        "a direct connection to the victim device. "
        "/usr/bin/wget downloaded the stage one malware "
        "/tmp/vpnfilter_stage1 from 91.121.109.209. "
        "/tmp/vpnfilter_stage1 downloaded the photo /tmp/update.jpg from "
        "217.12.202.40. "
        "The stage two address was encoded in the EXIF metadata of the "
        "photo. "
        "/tmp/vpnfilter_stage1 wrote the stage two malware to "
        "/tmp/vpnfilter_stage2. "
        "/bin/bash executed /tmp/vpnfilter_stage2 to launch the attack. "
        "/tmp/vpnfilter_stage2 connected to 91.121.109.209."),
    ground_truth_iocs=("/usr/bin/wget", "/tmp/vpnfilter_stage1",
                       "91.121.109.209", "/tmp/update.jpg", "217.12.202.40",
                       "/tmp/vpnfilter_stage2", "/bin/bash"),
    ground_truth_relations=(
        ("/usr/bin/wget", "download", "/tmp/vpnfilter_stage1"),
        ("/usr/bin/wget", "download", "91.121.109.209"),
        ("/tmp/vpnfilter_stage1", "download", "/tmp/update.jpg"),
        ("/tmp/vpnfilter_stage1", "download", "217.12.202.40"),
        ("/tmp/vpnfilter_stage1", "write", "/tmp/vpnfilter_stage2"),
        ("/bin/bash", "execute", "/tmp/vpnfilter_stage2"),
        ("/tmp/vpnfilter_stage2", "connect", "91.121.109.209"),
    ),
    steps=(
        ("proc:/usr/bin/wget", "write", "file:/tmp/vpnfilter_stage1"),
        ("proc:/usr/bin/wget", "receive", "ip:91.121.109.209"),
        ("proc:/tmp/vpnfilter_stage1", "write", "file:/tmp/update.jpg"),
        ("proc:/tmp/vpnfilter_stage1", "receive", "ip:217.12.202.40"),
        ("proc:/tmp/vpnfilter_stage1", "write", "file:/tmp/vpnfilter_stage2"),
        ("proc:/bin/bash", "execute", "file:/tmp/vpnfilter_stage2"),
        ("proc:/tmp/vpnfilter_stage2", "connect", "ip:91.121.109.209"),
    ),
    benign_sessions=100,
)

#: The full benchmark, in Table IV order.
ALL_CASES: tuple[AttackCase, ...] = (
    _TC_CLEARSCOPE_1, _TC_CLEARSCOPE_2, _TC_CLEARSCOPE_3,
    _TC_FIVEDIRECTIONS_1, _TC_FIVEDIRECTIONS_2, _TC_FIVEDIRECTIONS_3,
    _TC_THEIA_1, _TC_THEIA_2, _TC_THEIA_3, _TC_THEIA_4,
    _TC_TRACE_1, _TC_TRACE_2, _TC_TRACE_3, _TC_TRACE_4, _TC_TRACE_5,
    _PASSWORD_CRACK, _DATA_LEAK, _VPNFILTER,
)

_CASES_BY_ID = {case.case_id: case for case in ALL_CASES}


def get_case(case_id: str) -> AttackCase:
    """Return one attack case by its id (e.g. ``"data_leak"``)."""
    try:
        return _CASES_BY_ID[case_id]
    except KeyError as exc:
        raise BenchmarkError(
            f"unknown case id {case_id!r}; known cases: "
            f"{', '.join(sorted(_CASES_BY_ID))}") from exc


def case_ids() -> list[str]:
    """All case ids in benchmark order."""
    return [case.case_id for case in ALL_CASES]


__all__ = ["ALL_CASES", "get_case", "case_ids"]
