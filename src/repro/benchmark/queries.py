"""Equivalent query generation for the RQ4 / RQ5 comparisons.

For every attack case the evaluation compares four semantically equivalent
queries (Section IV-B4):

(a) the TBQL query with event-pattern syntax (scheduled, PostgreSQL backend),
(b) a single giant SQL query,
(c) the TBQL query with length-1 event path pattern syntax (scheduled,
    Neo4j backend),
(d) a single giant Cypher query.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..extraction.pipeline import ThreatBehaviorExtractor
from ..tbql.compiler_cypher import compile_giant_cypher
from ..tbql.compiler_sql import compile_giant_sql
from ..tbql.parser import parse_tbql
from ..tbql.semantics import resolve_query
from ..tbql.synthesis import SynthesisPlan, TBQLSynthesizer
from .case import AttackCase


@dataclass(frozen=True)
class CaseQueries:
    """The four equivalent query texts for one case."""

    case_id: str
    tbql: str
    sql: str
    tbql_path: str
    cypher: str
    pattern_count: int

    def as_dict(self) -> dict[str, str]:
        return {"TBQL": self.tbql, "SQL": self.sql,
                "TBQL (length-1 path)": self.tbql_path,
                "Cypher": self.cypher}


def build_case_queries(case: AttackCase,
                       extractor: ThreatBehaviorExtractor | None = None
                       ) -> CaseQueries:
    """Extract the case's behavior graph and derive all four query variants."""
    extractor = extractor or ThreatBehaviorExtractor()
    extraction = extractor.extract(case.description)
    event_plan = SynthesisPlan()
    path_plan = SynthesisPlan(use_path_patterns=True, fuzzy_paths=False,
                              temporal_order=False)
    tbql = TBQLSynthesizer(event_plan).synthesize(extraction.graph)
    tbql_path = TBQLSynthesizer(path_plan).synthesize(extraction.graph)
    resolved = resolve_query(parse_tbql(tbql.text))
    resolved_path = resolve_query(parse_tbql(tbql_path.text))
    sql = compile_giant_sql(resolved)
    cypher = compile_giant_cypher(resolved_path)
    return CaseQueries(case_id=case.case_id, tbql=tbql.text,
                       sql=_inline_sql_params(sql.sql, sql.params),
                       tbql_path=tbql_path.text, cypher=cypher,
                       pattern_count=tbql.pattern_count)


def _inline_sql_params(sql: str, params: list) -> str:
    """Inline bound parameters so the SQL text is the analyst-written form.

    The conciseness comparison (Table X) measures the query text an analyst
    would have to write by hand, which contains literal values rather than
    placeholders.
    """
    rendered = sql
    for value in params:
        literal = f"'{value}'" if isinstance(value, str) else str(value)
        rendered = rendered.replace("?", literal, 1)
    return rendered


__all__ = ["CaseQueries", "build_case_queries"]
