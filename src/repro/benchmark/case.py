"""Attack case model for the evaluation benchmark.

Each case bundles:

* the OSCTI report text describing the attack (input to extraction),
* ground-truth labels: IOC entities and IOC relations present in the text
  (for Table V scoring),
* an *attack script* — the ordered malicious steps the attacker actually
  performed, which the builder replays through the synthetic collector and
  which double as the hunting ground truth (for Table VI scoring),
* the amount of benign background noise to mix in.

Steps use a compact notation: ``("proc:<exe>", "<operation>", "<target>")``
where the target is ``file:<path>``, ``proc:<exe>``, or ``ip:<address>``.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..audit.collector import AuditCollector, CollectorConfig
from ..audit.entities import SystemEvent
from ..audit.workload import BenignWorkloadGenerator, WorkloadConfig
from ..errors import BenchmarkError

AttackStep = tuple[str, str, str]


@dataclass(frozen=True)
class AttackCase:
    """One attack case of the 18-case evaluation benchmark (Table IV)."""

    case_id: str
    name: str
    description: str                       # OSCTI report text
    steps: tuple[AttackStep, ...]          # ordered malicious activities
    ground_truth_iocs: tuple[str, ...]
    ground_truth_relations: tuple[tuple[str, str, str], ...]
    #: Signatures the synthesized TBQL query is *not* expected to find (e.g.
    #: the paper's tc_trace_1 "run" ambiguity); they stay in the hunting
    #: ground truth and therefore lower recall, as in Table VI.
    expected_misses: tuple[AttackStep, ...] = ()
    benign_sessions: int = 40
    noise_seed: int = 97
    os_family: str = "linux"

    def hunting_ground_truth(self) -> set[tuple[str, str, str]]:
        """(subject, operation, object) signatures of all malicious events."""
        return {step_signature(step) for step in self.steps}


def step_signature(step: AttackStep) -> tuple[str, str, str]:
    """Convert a step into the (subject, operation, object) signature."""
    subject, operation, target = step
    return (_value_of(subject), _stored_operation(operation, target),
            _value_of(target))


def _kind_of(reference: str) -> str:
    kind, _, _ = reference.partition(":")
    if kind not in ("proc", "file", "ip"):
        raise BenchmarkError(f"bad step reference: {reference!r}")
    return kind


def _value_of(reference: str) -> str:
    return reference.partition(":")[2]


def _stored_operation(operation: str, target: str) -> str:
    """Operation name as it appears in the store after log parsing."""
    kind = _kind_of(target)
    if kind == "ip":
        return {"read": "receive", "write": "send",
                "download": "receive"}.get(operation, operation)
    return operation


@dataclass
class BuiltCase:
    """The materialized form of a case: events plus ground truth."""

    case: AttackCase
    events: list[SystemEvent]
    attack_signatures: set[tuple[str, str, str]]
    malicious_event_count: int
    benign_event_count: int


class CaseBuilder:
    """Replays a case's attack script and mixes in benign noise."""

    def __init__(self, start_time: float = 1_523_400_000.0) -> None:
        self.start_time = start_time

    def build(self, case: AttackCase,
              benign_sessions: int | None = None) -> BuiltCase:
        """Materialize a case into a mixed benign + malicious event stream."""
        sessions = case.benign_sessions if benign_sessions is None \
            else benign_sessions
        noise = BenignWorkloadGenerator(WorkloadConfig(
            num_sessions=sessions, seed=case.noise_seed,
            start_time=self.start_time)).generate()
        collector = AuditCollector(CollectorConfig(
            host=f"host-{case.case_id}",
            start_time=self.start_time + 120.0, seed=case.noise_seed + 1))
        malicious = self._replay(case, collector)
        events = noise + malicious
        return BuiltCase(case=case, events=events,
                         attack_signatures=case.hunting_ground_truth(),
                         malicious_event_count=len(malicious),
                         benign_event_count=len(noise))

    def _replay(self, case: AttackCase, collector: AuditCollector
                ) -> list[SystemEvent]:
        processes: dict[str, object] = {}
        events: list[SystemEvent] = []

        def process_for(exe: str):
            if exe not in processes:
                processes[exe] = collector.spawn_process(exe)
            return processes[exe]

        for subject_ref, operation, target_ref in case.steps:
            if _kind_of(subject_ref) != "proc":
                raise BenchmarkError(
                    f"{case.case_id}: step subject must be a process: "
                    f"{subject_ref!r}")
            subject = process_for(_value_of(subject_ref))
            target_kind = _kind_of(target_ref)
            target_value = _value_of(target_ref)
            if target_kind == "file":
                handler = {
                    "read": collector.read_file,
                    "write": collector.write_file,
                    "execute": collector.execute_file,
                    "delete": lambda s, p: collector.record(
                        s, _op("delete"), collector.file(p)),
                    "rename": lambda s, p: collector.record(
                        s, _op("rename"), collector.file(p)),
                    "open": lambda s, p: collector.record(
                        s, _op("open"), collector.file(p)),
                }.get(operation)
                if handler is None:
                    raise BenchmarkError(
                        f"{case.case_id}: unsupported file operation "
                        f"{operation!r}")
                events.extend(handler(subject, target_value))
            elif target_kind == "ip":
                handler = {
                    "connect": collector.connect_ip,
                    "send": collector.send_to,
                    "write": collector.send_to,
                    "receive": collector.receive_from,
                    "read": collector.receive_from,
                    "download": collector.receive_from,
                }.get(operation)
                if handler is None:
                    raise BenchmarkError(
                        f"{case.case_id}: unsupported network operation "
                        f"{operation!r}")
                events.extend(handler(subject, target_value))
            elif target_kind == "proc":
                if operation not in ("start", "fork", "end"):
                    raise BenchmarkError(
                        f"{case.case_id}: unsupported process operation "
                        f"{operation!r}")
                child = process_for(target_value)
                events.extend(collector.record(subject, _op("start")
                                               if operation != "end"
                                               else _op("end"), child))
            collector.advance(1.5)
        return events


def _op(name: str):
    from ..audit.entities import Operation
    return Operation.from_string(name)


__all__ = ["AttackStep", "AttackCase", "BuiltCase", "CaseBuilder",
           "step_signature"]
