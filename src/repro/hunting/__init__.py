"""End-to-end threat hunting facade."""

from .threatraptor import HuntReport, ThreatRaptor

__all__ = ["HuntReport", "ThreatRaptor"]
