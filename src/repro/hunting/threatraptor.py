"""The ThreatRaptor facade: OSCTI-driven threat hunting end to end.

Mirrors Figure 1 of the paper: audit logs are collected and stored in the
dual database backends; an OSCTI report is turned into a threat behavior
graph; a TBQL query is synthesized from the graph (the analyst may revise
it); the query is executed in exact mode, or in fuzzy mode when exact search
does not retrieve meaningful results.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

from ..audit.entities import SystemEvent
from ..audit.parser import parse_audit_log
from ..extraction.pipeline import (ExtractionResult,
                                   ThreatBehaviorExtractor)
from ..storage.dualstore import DualStore
from ..tbql.executor import QueryResult, TBQLExecutor
from ..tbql.fuzzy import FuzzySearcher, FuzzySearchResult
from ..tbql.synthesis import SynthesisPlan, SynthesizedQuery, TBQLSynthesizer


@dataclass
class HuntReport:
    """Everything ThreatRaptor produced for one OSCTI-driven hunt."""

    extraction: ExtractionResult
    synthesized: SynthesizedQuery
    executed_query: str
    result: QueryResult
    synthesis_seconds: float = 0.0
    fuzzy_result: Optional[FuzzySearchResult] = None

    @property
    def total_pipeline_seconds(self) -> float:
        """Extraction + graph construction + synthesis time (RQ3)."""
        return (self.extraction.extraction_seconds +
                self.extraction.graph_seconds + self.synthesis_seconds)


@dataclass
class ThreatRaptor:
    """Facade over the auditing, extraction, and query subsystems."""

    store: DualStore = field(default_factory=DualStore)
    extractor: ThreatBehaviorExtractor = field(
        default_factory=ThreatBehaviorExtractor)
    synthesis_plan: SynthesisPlan = field(default_factory=SynthesisPlan)
    use_scheduler: bool = True
    #: Worker processes for scatter-gather scans over a segmented
    #: store's sealed segments (1 = serial; see ``repro query --workers``).
    workers: int = 1
    #: Segment scan strategy — "columnar" (memory-mapped events.col,
    #: the default) or "sqlite" (see ``repro query --scan-strategy``).
    scan_strategy: str = "columnar"

    @classmethod
    def open_snapshot(cls, path: str | Path, **kwargs) -> "ThreatRaptor":
        """Hunt against a persisted dual-store snapshot (read-only).

        The snapshot must have been written by :meth:`DualStore.save`
        (``repro snapshot``); the opened store serves queries only.
        """
        return cls(store=DualStore.open(path), **kwargs)

    # ------------------------------------------------------------------
    # data ingestion
    # ------------------------------------------------------------------
    def ingest_log_text(self, log_text: str) -> int:
        """Parse auditd-style log text and load it into both backends."""
        events = parse_audit_log(log_text)
        return self.store.load_events(events)

    def ingest_events(self, events: Iterable[SystemEvent]) -> int:
        """Load already-parsed system events into both backends."""
        return self.store.load_events(events)

    # ------------------------------------------------------------------
    # OSCTI-driven hunting
    # ------------------------------------------------------------------
    def extract(self, oscti_text: str) -> ExtractionResult:
        """Extract the threat behavior graph from an OSCTI report."""
        return self.extractor.extract(oscti_text)

    def synthesize(self, extraction: ExtractionResult) -> SynthesizedQuery:
        """Synthesize a TBQL query from an extraction result."""
        return TBQLSynthesizer(self.synthesis_plan).synthesize(
            extraction.graph)

    def hunt(self, oscti_text: str, revised_query: Optional[str] = None,
             fallback_to_fuzzy: bool = False) -> HuntReport:
        """Run the full pipeline: extract, synthesize, (optionally) execute
        a revised query, and search the audit data.

        Args:
            oscti_text: the OSCTI report describing the attack.
            revised_query: optional analyst-edited TBQL replacing the
                synthesized query (human-in-the-loop analysis).
            fallback_to_fuzzy: run the fuzzy search mode when the exact
                search returns no results.
        """
        extraction = self.extract(oscti_text)
        synthesis_start = time.perf_counter()
        synthesized = self.synthesize(extraction)
        synthesis_seconds = time.perf_counter() - synthesis_start
        query_text = revised_query if revised_query is not None \
            else synthesized.text
        result = self.execute_tbql(query_text)
        fuzzy_result = None
        if fallback_to_fuzzy and not result.rows:
            fuzzy_result = self.fuzzy_search(query_text)
        return HuntReport(extraction=extraction, synthesized=synthesized,
                          executed_query=query_text, result=result,
                          synthesis_seconds=synthesis_seconds,
                          fuzzy_result=fuzzy_result)

    # ------------------------------------------------------------------
    # proactive hunting with manually constructed queries
    # ------------------------------------------------------------------
    def execute_tbql(self, query_text: str,
                     now: Optional[float] = None) -> QueryResult:
        """Execute a TBQL query in exact search mode.

        The executor is reused across calls, so its hydrated-entity cache
        stays warm over a hunting session; it invalidates itself when the
        store's data is replaced (``DualStore.data_version``).
        """
        return self._executor().execute(query_text, now=now)

    def _executor(self) -> TBQLExecutor:
        executor: Optional[TBQLExecutor] = \
            self.__dict__.get("_cached_executor")
        if executor is None or executor.store is not self.store or \
                executor.use_scheduler != self.use_scheduler or \
                executor.workers != self.workers or \
                executor.scan_strategy != self.scan_strategy:
            if executor is not None:
                executor.close()
            executor = TBQLExecutor(self.store,
                                    use_scheduler=self.use_scheduler,
                                    workers=self.workers,
                                    scan_strategy=self.scan_strategy)
            self.__dict__["_cached_executor"] = executor
        return executor

    def fuzzy_search(self, query_text: str) -> FuzzySearchResult:
        """Execute a TBQL query in fuzzy (inexact graph matching) mode."""
        return FuzzySearcher(self.store).search(query_text)


__all__ = ["ThreatRaptor", "HuntReport"]
