"""IOC recognition via regex rules (Algorithm 1, Step 2).

The recognizer extends the style of the open-source ``ioc-parser`` project
with the improvements the paper mentions (distinguishing Linux and Windows
file paths, file names with extensions, CIDR-suffixed IPs, Android package
names).  Matches are non-overlapping and longest-match-wins so that
``/tmp/upload.tar.bz2`` is recognized once rather than as nested fragments.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass


class IOCType(enum.Enum):
    """Types of indicators the recognizer distinguishes."""

    FILEPATH = "Filepath"
    WINDOWS_FILEPATH = "WindowsFilepath"
    FILENAME = "Filename"
    IP = "IP"
    CIDR = "CIDR"
    DOMAIN = "Domain"
    URL = "URL"
    EMAIL = "Email"
    MD5 = "MD5"
    SHA1 = "SHA1"
    SHA256 = "SHA256"
    REGISTRY = "Registry"
    CVE = "CVE"
    PACKAGE = "AndroidPackage"


#: IOC types that correspond to system entities captured by system auditing;
#: other types are filtered out during pre-synthesis screening (Section III-E).
AUDITABLE_IOC_TYPES = frozenset({
    IOCType.FILEPATH, IOCType.WINDOWS_FILEPATH, IOCType.FILENAME,
    IOCType.IP, IOCType.CIDR, IOCType.PACKAGE,
})


@dataclass(frozen=True)
class IOC:
    """One IOC mention in a piece of text."""

    value: str
    ioc_type: IOCType
    start: int
    end: int

    @property
    def normalized(self) -> str:
        """Canonical comparison form (CIDR suffix and quotes stripped)."""
        value = self.value.strip("\"'`")
        if self.ioc_type is IOCType.CIDR:
            return value.split("/")[0]
        return value


# Ordered list: earlier rules win ties; longest match always wins overall.
_RULES: list[tuple[IOCType, re.Pattern]] = [
    (IOCType.URL, re.compile(
        r"\bhttps?://[^\s\"'<>\)]+", re.IGNORECASE)),
    (IOCType.EMAIL, re.compile(
        r"\b[A-Za-z0-9._%+-]+@[A-Za-z0-9.-]+\.[A-Za-z]{2,}\b")),
    (IOCType.CVE, re.compile(r"\bCVE-\d{4}-\d{4,7}\b", re.IGNORECASE)),
    (IOCType.SHA256, re.compile(r"\b[a-fA-F0-9]{64}\b")),
    (IOCType.SHA1, re.compile(r"\b[a-fA-F0-9]{40}\b")),
    (IOCType.MD5, re.compile(r"\b[a-fA-F0-9]{32}\b")),
    (IOCType.CIDR, re.compile(
        r"\b(?:\d{1,3}\.){3}\d{1,3}/\d{1,2}\b")),
    (IOCType.IP, re.compile(
        r"\b(?:\d{1,3}\.){3}\d{1,3}\b")),
    (IOCType.REGISTRY, re.compile(
        r"\b(?:HKEY_LOCAL_MACHINE|HKEY_CURRENT_USER|HKLM|HKCU)"
        r"(?:\\[A-Za-z0-9_ .{}-]+)+", re.IGNORECASE)),
    (IOCType.WINDOWS_FILEPATH, re.compile(
        r"\b[A-Za-z]:\\(?:[A-Za-z0-9_. ()-]+\\)*[A-Za-z0-9_.()-]+\b")),
    (IOCType.FILEPATH, re.compile(
        r"(?<![\w.])/(?:[A-Za-z0-9_.+-]+/)*[A-Za-z0-9_.+-]+")),
    (IOCType.PACKAGE, re.compile(
        r"\b(?:com|org|net|io)(?:\.[a-z][a-z0-9_]+){2,}\b")),
    (IOCType.FILENAME, re.compile(
        r"\b[A-Za-z0-9_-][A-Za-z0-9_.-]*\."
        r"(?:exe|dll|so|sh|bat|ps1|py|js|jar|apk|doc|docx|xls|xlsx|xlsm|pdf|"
        r"zip|tar|gz|bz2|rar|7z|png|jpg|img|bin|elf|tmp|dat|cfg|conf|log|"
        r"php|html?|json|xml|ya?ml|db|sqlite|csv|txt|key|pem|crt|msi|vbs|"
        r"hta|lnk|scr|pot)\b", re.IGNORECASE)),
    (IOCType.DOMAIN, re.compile(
        r"\b(?:[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?\.)+"
        r"(?:com|net|org|io|ru|cn|info|biz|xyz|top|cc|onion)\b",
        re.IGNORECASE)),
]

#: Common English words that the FILENAME / DOMAIN rules would otherwise
#: match ("e.g.", version numbers, ...).
_FALSE_POSITIVE_VALUES = {"e.g", "i.e", "etc."}


class IOCRecognizer:
    """Recognizes IOC mentions in text with longest-match-wins semantics."""

    def __init__(self, extra_rules: list[tuple[IOCType, re.Pattern]] | None
                 = None) -> None:
        self._rules = list(_RULES)
        if extra_rules:
            self._rules = list(extra_rules) + self._rules

    def recognize(self, text: str) -> list[IOC]:
        """Return non-overlapping IOC mentions sorted by start offset."""
        candidates: list[IOC] = []
        for ioc_type, pattern in self._rules:
            for match in pattern.finditer(text):
                value = match.group().rstrip(".,;:)")
                if not value or value.lower() in _FALSE_POSITIVE_VALUES:
                    continue
                if ioc_type is IOCType.IP and not _valid_ip(value):
                    continue
                candidates.append(IOC(value=value, ioc_type=ioc_type,
                                      start=match.start(),
                                      end=match.start() + len(value)))
        return _resolve_overlaps(candidates)


def _valid_ip(value: str) -> bool:
    parts = value.split("/")[0].split(".")
    return len(parts) == 4 and all(part.isdigit() and 0 <= int(part) <= 255
                                   for part in parts)


def _resolve_overlaps(candidates: list[IOC]) -> list[IOC]:
    """Keep the longest match among overlapping candidates."""
    ordered = sorted(candidates,
                     key=lambda ioc: (-(ioc.end - ioc.start), ioc.start))
    chosen: list[IOC] = []
    occupied: list[tuple[int, int]] = []
    for ioc in ordered:
        if any(ioc.start < end and start < ioc.end
               for start, end in occupied):
            continue
        chosen.append(ioc)
        occupied.append((ioc.start, ioc.end))
    chosen.sort(key=lambda ioc: ioc.start)
    return chosen


def recognize_iocs(text: str) -> list[IOC]:
    """Module-level convenience wrapper around :class:`IOCRecognizer`."""
    return IOCRecognizer().recognize(text)


__all__ = ["IOCType", "IOC", "IOCRecognizer", "recognize_iocs",
           "AUDITABLE_IOC_TYPES"]
