"""Threat behavior graph construction (Algorithm 1, Step 10).

Nodes are (merged) IOCs and edges are extracted IOC relations.  Every edge is
assigned a sequence number — its rank when the relation triplets are sorted by
the occurrence offset of the relation verb in the OSCTI text — so the graph
captures the order of the threat steps, which query synthesis later turns into
``with ... before ...`` temporal constraints.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from .ioc import IOCType
from .merge import MergedIOC
from .relations import IOCRelation


@dataclass(frozen=True)
class BehaviorNode:
    """An IOC node of the threat behavior graph."""

    ioc: str
    ioc_type: IOCType | None


@dataclass(frozen=True)
class BehaviorEdge:
    """A relation edge of the threat behavior graph."""

    source: str
    target: str
    relation: str
    sequence: int


@dataclass
class ThreatBehaviorGraph:
    """Structured representation of the threat behaviors in an OSCTI report."""

    nodes: list[BehaviorNode] = field(default_factory=list)
    edges: list[BehaviorEdge] = field(default_factory=list)

    # ------------------------------------------------------------------
    # access helpers
    # ------------------------------------------------------------------
    def node_for(self, ioc: str) -> BehaviorNode | None:
        for node in self.nodes:
            if node.ioc == ioc:
                return node
        return None

    def node_type(self, ioc: str) -> IOCType | None:
        node = self.node_for(ioc)
        return node.ioc_type if node else None

    def ordered_edges(self) -> list[BehaviorEdge]:
        """Edges sorted by sequence number (the threat step order)."""
        return sorted(self.edges, key=lambda edge: edge.sequence)

    def successors(self, ioc: str) -> list[BehaviorEdge]:
        return [edge for edge in self.edges if edge.source == ioc]

    def predecessors(self, ioc: str) -> list[BehaviorEdge]:
        return [edge for edge in self.edges if edge.target == ioc]

    def to_networkx(self) -> nx.MultiDiGraph:
        """Export to a networkx multigraph (used by examples and tests)."""
        graph = nx.MultiDiGraph()
        for node in self.nodes:
            graph.add_node(node.ioc,
                           ioc_type=node.ioc_type.value if node.ioc_type
                           else None)
        for edge in self.edges:
            graph.add_edge(edge.source, edge.target, relation=edge.relation,
                           sequence=edge.sequence)
        return graph

    def __len__(self) -> int:
        return len(self.nodes)

    def summary(self) -> str:
        """Human-readable multi-line description of the graph."""
        lines = [f"Threat behavior graph: {len(self.nodes)} IOCs, "
                 f"{len(self.edges)} relations"]
        for edge in self.ordered_edges():
            lines.append(f"  [{edge.sequence}] {edge.source} "
                         f"--{edge.relation}--> {edge.target}")
        return "\n".join(lines)


def build_behavior_graph(iocs: list[MergedIOC],
                         relations: list[IOCRelation]
                         ) -> ThreatBehaviorGraph:
    """Construct the threat behavior graph from merged IOCs and relations.

    Relations are processed in ascending order of the relation verb's
    occurrence offset; the position in that order becomes the edge's sequence
    number.  Relations whose endpoints were not recognized as IOCs are
    skipped (they cannot become graph nodes).
    """
    graph = ThreatBehaviorGraph()
    canonical: dict[str, MergedIOC] = {}
    for merged in iocs:
        canonical[merged.canonical] = merged
        for mention in merged.mentions:
            canonical.setdefault(mention, merged)

    def _node_value(value: str) -> tuple[str, IOCType | None] | None:
        merged = canonical.get(value)
        if merged is None:
            return None
        return merged.canonical, merged.ioc_type

    added_nodes: set[str] = set()
    sequence = 1
    seen_edges: set[tuple[str, str, str]] = set()
    for relation in sorted(relations, key=lambda rel: rel.verb_offset):
        source = _node_value(relation.subject)
        target = _node_value(relation.obj)
        if source is None or target is None:
            continue
        source_value, source_type = source
        target_value, target_type = target
        if source_value == target_value and relation.verb not in (
                "execute", "run", "start"):
            # Self-loops only make sense for execution-style relations
            # (a file running itself, cf. tc_trace_1 in the paper).
            continue
        key = (source_value, relation.verb, target_value)
        if key in seen_edges:
            continue
        seen_edges.add(key)
        for value, ioc_type in ((source_value, source_type),
                                (target_value, target_type)):
            if value not in added_nodes:
                graph.nodes.append(BehaviorNode(ioc=value,
                                                ioc_type=ioc_type))
                added_nodes.add(value)
        graph.edges.append(BehaviorEdge(source=source_value,
                                        target=target_value,
                                        relation=relation.verb,
                                        sequence=sequence))
        sequence += 1
    return graph


__all__ = ["BehaviorNode", "BehaviorEdge", "ThreatBehaviorGraph",
           "build_behavior_graph"]
