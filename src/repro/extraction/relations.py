"""Dependency-path based IOC relation extraction (Algorithm 1, Step 9).

For each dependency tree the extractor enumerates ordered pairs of IOC nodes
(including pronoun/nominal nodes resolved to IOCs by coreference) and checks
whether the pair stands in a subject-object relation, by examining the three
parts of their dependency path: root-to-LCA, LCA-to-subject, LCA-to-object.
For pairs that pass, the relation verb is the annotated candidate verb on the
path closest to the object node, lemmatized.

Subject-side rules (the IOC must be the *actor* / instrument):

* S1 — the node (or its noun-group head) is ``nsubj``;
* S2 — the node is the direct object of a *use-class* verb
  ("the attacker used /bin/tar to read ...");
* S3 — the node is the agent of a passive verb ("... was downloaded by
  firefox");
* S4 — the node is an appositive naming of a process-like noun
  ("the launched process /usr/bin/gpg reading from ...").

Object-side rules:

* O1 — direct/indirect object of a verb;
* O2 — object of a preposition attached to a verb (excluding agentive "by");
* O3 — passive subject ("... /tmp/payload was downloaded by ...").
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.depparse import (DepNode, DependencyTree, LINKING_VERBS,
                            USE_CLASS_VERBS)
from ..nlp.lemmatizer import lemmatize
from .annotate import COREF_NOUNS
from .ioc import IOCType

_SUBJECT_DEPRELS = {"nsubj", "nsubjpass"}
_OBJECT_DEPRELS = {"dobj", "obj"}
_PREP_OBJECT_DEPRELS = {"pobj"}


@dataclass(frozen=True)
class IOCRelation:
    """One extracted (subject IOC, relation verb, object IOC) triplet."""

    subject: str
    subject_type: IOCType | None
    verb: str
    obj: str
    object_type: IOCType | None
    #: Character offset of the relation verb in the source text block; used
    #: to order threat steps when building the behavior graph.
    verb_offset: int
    sentence: str = ""


def _ioc_value(node: DepNode) -> str | None:
    if "merged_ioc" in node.annotations:
        return node.annotations["merged_ioc"]
    if "ioc_value" in node.annotations:
        return node.annotations["ioc_value"]
    if "coref_ioc" in node.annotations:
        return node.annotations["coref_ioc"]
    return None


def _ioc_type(node: DepNode) -> IOCType | None:
    if "ioc_type" in node.annotations:
        return node.annotations["ioc_type"]
    if "coref_ioc_type" in node.annotations:
        return node.annotations["coref_ioc_type"]
    return None


def _ioc_nodes(tree: DependencyTree) -> list[DepNode]:
    return [node for node in tree.nodes if _ioc_value(node) is not None]


def _group_head(tree: DependencyTree, node: DepNode) -> DepNode:
    """Follow compound/appos links upward to the head of the noun group."""
    current = node
    seen = set()
    while current.head >= 0 and current.deprel in ("compound", "appos") and \
            current.index not in seen:
        seen.add(current.index)
        current = tree.nodes_by_index(current.head)
    return current


def _governing_verb(tree: DependencyTree, node: DepNode) -> DepNode | None:
    """Return the nearest ancestor verb of ``node``."""
    for ancestor in tree.path_to_root(node.index)[1:]:
        if ancestor.pos == "VERB":
            return ancestor
    return None


def _is_subject_side(tree: DependencyTree, node: DepNode) -> bool:
    head_node = _group_head(tree, node)
    if head_node.deprel in _SUBJECT_DEPRELS and head_node.deprel == "nsubj":
        return True
    parent = (tree.nodes_by_index(head_node.head)
              if head_node.head >= 0 else None)
    # S2: instrument object of a use-class verb.
    if head_node.deprel in (_OBJECT_DEPRELS | _PREP_OBJECT_DEPRELS) and \
            parent is not None:
        verb = parent if parent.pos == "VERB" else (
            tree.nodes_by_index(parent.head) if parent.head >= 0 else None)
        if verb is not None and verb.pos == "VERB" and \
                verb.lemma in USE_CLASS_VERBS:
            return True
    # S3: agent of a passive verb ("by firefox").
    if head_node.deprel in _PREP_OBJECT_DEPRELS and parent is not None and \
            parent.lemma == "by":
        return True
    # S4: the IOC is an appositive naming of a process-like noun in a
    # prepositional phrase ("... corresponds to the launched process X
    # reading from Y").  Restricted to pobj heads so that ordinary direct
    # objects ("downloaded the stage one malware X") are not misread as
    # actors of their own sentence.
    if head_node.deprel in _PREP_OBJECT_DEPRELS and any(
            child.deprel in ("compound", "amod") and
            child.lemma in COREF_NOUNS
            for child in tree.children(head_node.index)):
        return True
    # A compound child of a subject ("the /bin/tar process read ...").
    if node.deprel in ("compound", "appos") and \
            head_node.deprel in _SUBJECT_DEPRELS:
        return True
    return False


def _is_object_side(tree: DependencyTree, node: DepNode) -> bool:
    head_node = _group_head(tree, node)
    if head_node.deprel in _OBJECT_DEPRELS:
        # Exclude instrument objects of pure linking verbs ("used X to ...");
        # objects of execution verbs ("executed X") are genuine event objects.
        parent = (tree.nodes_by_index(head_node.head)
                  if head_node.head >= 0 else None)
        if parent is not None and parent.pos == "VERB" and \
                parent.lemma in LINKING_VERBS:
            return False
        return True
    if head_node.deprel == "nsubjpass":
        return True
    if head_node.deprel in _PREP_OBJECT_DEPRELS and head_node.head >= 0:
        prep = tree.nodes_by_index(head_node.head)
        if prep.lemma == "by":
            return False
        attach = (tree.nodes_by_index(prep.head)
                  if prep.head >= 0 else None)
        return attach is not None and attach.pos == "VERB"
    return False


def _verbs_between(tree: DependencyTree, subject: DepNode, object_: DepNode
                   ) -> list[DepNode]:
    """Candidate relation verbs on the dependency path between the nodes."""
    path = tree.path_between(subject.index, object_.index)
    verbs = [node for node in path if "relation_verb" in node.annotations]
    # Also consider the object's governing verb even if the path skips it
    # (prepositions attach the object below the verb, keeping it on the
    # path, but appositive constructions may not).
    governing = _governing_verb(tree, object_)
    if governing is not None and "relation_verb" in governing.annotations \
            and governing not in verbs:
        verbs.append(governing)
    return verbs


def _verb_ancestry_ok(tree: DependencyTree, subject: DepNode,
                      object_: DepNode) -> bool:
    """The subject's verb must dominate (or equal) the object's verb."""
    subject_verb = _governing_verb(tree, _group_head(tree, subject))
    object_verb = _governing_verb(tree, _group_head(tree, object_))
    if subject_verb is None or object_verb is None:
        return False
    if subject_verb.index == object_verb.index:
        return True
    ancestors = {node.index for node in tree.path_to_root(object_verb.index)}
    if subject_verb.index in ancestors:
        return True
    # Coordinated verbs sharing the subject ("X read ... and wrote ..."):
    # the object's verb chain reaches the subject's verb via conj links.
    current = object_verb
    while current.head >= 0:
        parent = tree.nodes_by_index(current.head)
        if current.deprel not in ("conj", "xcomp", "advcl"):
            break
        if parent.index == subject_verb.index:
            return True
        current = parent
    return False


def extract_relations(tree: DependencyTree, text_offset: int = 0
                      ) -> list[IOCRelation]:
    """Extract IOC relations from one annotated, coref-resolved tree."""
    relations: list[IOCRelation] = []
    ioc_nodes = _ioc_nodes(tree)
    for subject_node in ioc_nodes:
        if not _is_subject_side(tree, subject_node):
            continue
        for object_node in ioc_nodes:
            if object_node.index == subject_node.index:
                continue
            subject_value = _ioc_value(subject_node)
            object_value = _ioc_value(object_node)
            if subject_value == object_value:
                continue
            if not _is_object_side(tree, object_node):
                continue
            if not _verb_ancestry_ok(tree, subject_node, object_node):
                continue
            verbs = _verbs_between(tree, subject_node, object_node)
            if not verbs:
                continue
            # Select the candidate verb closest (by token index) to the
            # object IOC node, then lemmatize it.
            closest = min(verbs,
                          key=lambda verb: abs(verb.index -
                                               object_node.index))
            relations.append(IOCRelation(
                subject=subject_value,
                subject_type=_ioc_type(subject_node),
                verb=lemmatize(closest.annotations.get("relation_verb",
                                                       closest.lemma)),
                obj=object_value,
                object_type=_ioc_type(object_node),
                verb_offset=text_offset + closest.index,
                sentence=tree.text,
            ))
    return _deduplicate(relations)


def _deduplicate(relations: list[IOCRelation]) -> list[IOCRelation]:
    seen: set[tuple[str, str, str]] = set()
    unique: list[IOCRelation] = []
    for relation in relations:
        key = (relation.subject, relation.verb, relation.obj)
        if key in seen:
            continue
        seen.add(key)
        unique.append(relation)
    return unique


__all__ = ["IOCRelation", "extract_relations"]
