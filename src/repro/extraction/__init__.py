"""Threat behavior extraction from OSCTI text (the paper's Algorithm 1)."""

from .annotate import RELATION_VERB_KEYWORDS, annotate_tree, simplify_tree
from .behavior_graph import (BehaviorEdge, BehaviorNode, ThreatBehaviorGraph,
                             build_behavior_graph)
from .coref import resolve_coreferences
from .ioc import (AUDITABLE_IOC_TYPES, IOC, IOCRecognizer, IOCType,
                  recognize_iocs)
from .merge import MergedIOC, scan_and_merge_iocs
from .openie import ClauseOpenIE, OpenIETriple, PatternOpenIE
from .pipeline import (ExtractionResult, PipelineConfig,
                       ThreatBehaviorExtractor, extract_threat_behaviors)
from .protection import (PROTECTION_WORD, ProtectedText, protect_iocs,
                         restore_tree)
from .relations import IOCRelation, extract_relations

__all__ = [
    "RELATION_VERB_KEYWORDS",
    "annotate_tree",
    "simplify_tree",
    "BehaviorEdge",
    "BehaviorNode",
    "ThreatBehaviorGraph",
    "build_behavior_graph",
    "resolve_coreferences",
    "AUDITABLE_IOC_TYPES",
    "IOC",
    "IOCRecognizer",
    "IOCType",
    "recognize_iocs",
    "MergedIOC",
    "scan_and_merge_iocs",
    "ClauseOpenIE",
    "OpenIETriple",
    "PatternOpenIE",
    "ExtractionResult",
    "PipelineConfig",
    "ThreatBehaviorExtractor",
    "extract_threat_behaviors",
    "PROTECTION_WORD",
    "ProtectedText",
    "protect_iocs",
    "restore_tree",
    "IOCRelation",
    "extract_relations",
]
