"""Threat behavior extraction pipeline (Algorithm 1, end to end).

Given an OSCTI report's text, the pipeline

1. segments the article into blocks,
2. recognizes and protects IOCs per block,
3. segments each block into sentences,
4. parses each sentence into a dependency tree and restores IOCs,
5. annotates nodes of interest (IOCs, candidate verbs, pronouns),
6. simplifies trees,
7. resolves coreferences within the block,
8. scans and merges IOCs across blocks,
9. extracts IOC relations per tree with dependency-path rules, and
10. constructs the threat behavior graph.

Per-stage wall-clock timings are recorded because the paper reports them
(Table VII).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..nlp.depparse import DependencyTree, RuleDependencyParser
from ..nlp.sentences import split_blocks, split_sentences
from .annotate import annotate_tree, simplify_tree
from .behavior_graph import ThreatBehaviorGraph, build_behavior_graph
from .coref import resolve_coreferences
from .ioc import IOCRecognizer
from .merge import MergedIOC, scan_and_merge_iocs
from .protection import protect_iocs, restore_tree
from .relations import IOCRelation, extract_relations


@dataclass
class ExtractionResult:
    """Everything the pipeline produced for one OSCTI report."""

    graph: ThreatBehaviorGraph
    iocs: list[MergedIOC]
    relations: list[IOCRelation]
    trees: list[DependencyTree] = field(default_factory=list)
    #: Seconds spent extracting entities & relations from text.
    extraction_seconds: float = 0.0
    #: Seconds spent constructing the threat behavior graph.
    graph_seconds: float = 0.0

    @property
    def ioc_values(self) -> list[str]:
        return [ioc.canonical for ioc in self.iocs]

    @property
    def relation_triples(self) -> list[tuple[str, str, str]]:
        return [(rel.subject, rel.verb, rel.obj) for rel in self.relations]


@dataclass
class PipelineConfig:
    """Switches used by the evaluation (ablations of Table V)."""

    #: Disable IOC protection (the "ThreatRaptor - IOC Protection" ablation).
    ioc_protection: bool = True
    #: Run tree simplification (performance only; never changes the output).
    simplify: bool = True
    #: Run coreference resolution.
    coreference: bool = True


class ThreatBehaviorExtractor:
    """Unsupervised, light-weight threat behavior extraction pipeline."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()
        self._recognizer = IOCRecognizer()
        self._parser = RuleDependencyParser()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def extract(self, document: str) -> ExtractionResult:
        """Run the full pipeline on an OSCTI report's text."""
        start = time.perf_counter()
        block_trees: list[list[DependencyTree]] = []
        block_offsets: list[int] = []
        offset = 0
        for block in split_blocks(document):
            trees = self._process_block(block, offset)
            block_trees.append(trees)
            block_offsets.append(offset)
            offset += len(block) + 2
        all_iocs = scan_and_merge_iocs(block_trees)
        all_relations: list[IOCRelation] = []
        for trees in block_trees:
            for tree in trees:
                all_relations.extend(
                    extract_relations(tree,
                                      text_offset=tree.nodes[0].index
                                      if tree.nodes else 0))
        extraction_seconds = time.perf_counter() - start

        graph_start = time.perf_counter()
        # Order relations by their appearance in the document: block order,
        # then sentence order, then verb position.
        ordered = self._order_relations(block_trees, all_relations)
        graph = build_behavior_graph(all_iocs, ordered)
        graph_seconds = time.perf_counter() - graph_start

        flat_trees = [tree for trees in block_trees for tree in trees]
        return ExtractionResult(graph=graph, iocs=all_iocs,
                                relations=ordered, trees=flat_trees,
                                extraction_seconds=extraction_seconds,
                                graph_seconds=graph_seconds)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _process_block(self, block: str, block_offset: int
                       ) -> list[DependencyTree]:
        if self.config.ioc_protection:
            protected = protect_iocs(block, self._recognizer)
            text_for_nlp = protected.text
        else:
            # Ablation: without protection, general-purpose sentence
            # segmentation and tokenization treat the dots inside IOCs
            # (IPs, file extensions, package names) as sentence/token
            # boundaries and break those IOC strings apart; path-only IOCs
            # without dots tend to survive.  Splitting dotted tokens here
            # reproduces that partial breakage.
            import re as _re
            protected = None
            text_for_nlp = _re.sub(
                r"\S*\.\S+",
                lambda match: " . ".join(match.group().split(".")),
                block)
        trees: list[DependencyTree] = []
        consumed = 0
        for sentence in split_sentences(text_for_nlp):
            tree = self._parser.parse(sentence.text)
            if protected is not None:
                consumed = restore_tree(tree, protected, consumed)
            else:
                self._recognize_unprotected(tree)
            tree = annotate_tree(tree)
            if self.config.simplify:
                simplified = simplify_tree(tree)
                if simplified is None:
                    continue
                tree = simplified
            trees.append(tree)
        if self.config.coreference:
            resolve_coreferences(trees)
        return trees

    def _recognize_unprotected(self, tree: DependencyTree) -> None:
        """Best-effort IOC tagging when protection is disabled.

        Without protection the tokenizer and segmenter have already shredded
        most IOC strings, so only mentions that survived as single tokens are
        recognized — this is exactly why the ablation's recall collapses.
        """
        for node in tree.nodes:
            matches = self._recognizer.recognize(node.text)
            if len(matches) == 1 and \
                    matches[0].value == node.text.strip(".,;:"):
                ioc = matches[0]
                node.annotations["ioc_value"] = ioc.normalized
                node.annotations["ioc_raw"] = ioc.value
                node.annotations["ioc_type"] = ioc.ioc_type

    @staticmethod
    def _order_relations(block_trees: list[list[DependencyTree]],
                         relations: list[IOCRelation]) -> list[IOCRelation]:
        """Assign document-global ordering offsets to relations."""
        sentence_rank: dict[str, int] = {}
        rank = 0
        for trees in block_trees:
            for tree in trees:
                sentence_rank.setdefault(tree.text, rank)
                rank += 1
        def key(relation: IOCRelation) -> tuple[int, int]:
            return (sentence_rank.get(relation.sentence, rank),
                    relation.verb_offset)
        ordered = sorted(relations, key=key)
        return [IOCRelation(subject=rel.subject,
                            subject_type=rel.subject_type, verb=rel.verb,
                            obj=rel.obj, object_type=rel.object_type,
                            verb_offset=index, sentence=rel.sentence)
                for index, rel in enumerate(ordered)]


def extract_threat_behaviors(document: str,
                             config: PipelineConfig | None = None
                             ) -> ExtractionResult:
    """Module-level convenience wrapper around the extraction pipeline."""
    return ThreatBehaviorExtractor(config).extract(document)


__all__ = ["ExtractionResult", "PipelineConfig", "ThreatBehaviorExtractor",
           "extract_threat_behaviors"]
