"""IOC protection and restoration (Algorithm 1, Steps 2 and 4).

Before general NLP components see the text, every IOC mention is replaced by
the dummy word ``something`` and a replacement record is kept.  After
dependency parsing, the dummy tokens are mapped back to their original IOC
mentions so the security context is restored in the trees.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExtractionError
from ..nlp.depparse import DependencyTree
from .ioc import IOC, IOCRecognizer

#: The dummy word used in place of an IOC (the paper uses "something").
PROTECTION_WORD = "something"


@dataclass(frozen=True)
class ReplacementRecord:
    """Maps the n-th protection word back to the original IOC mention."""

    order: int
    ioc: IOC


@dataclass
class ProtectedText:
    """The protected text plus the replacement records for one block."""

    text: str
    records: list[ReplacementRecord]

    def record_for(self, occurrence: int) -> ReplacementRecord | None:
        """Return the record for the n-th protection word (0-based)."""
        if 0 <= occurrence < len(self.records):
            return self.records[occurrence]
        return None


def protect_iocs(text: str, recognizer: IOCRecognizer | None = None
                 ) -> ProtectedText:
    """Replace each IOC mention in ``text`` with the protection word."""
    recognizer = recognizer or IOCRecognizer()
    iocs = recognizer.recognize(text)
    pieces: list[str] = []
    records: list[ReplacementRecord] = []
    cursor = 0
    for order, ioc in enumerate(iocs):
        pieces.append(text[cursor:ioc.start])
        pieces.append(PROTECTION_WORD)
        records.append(ReplacementRecord(order=order, ioc=ioc))
        cursor = ioc.end
    pieces.append(text[cursor:])
    return ProtectedText(text="".join(pieces), records=records)


def restore_tree(tree: DependencyTree, protected: ProtectedText,
                 consumed: int) -> int:
    """Restore IOC mentions into a parsed dependency tree.

    ``consumed`` is the number of protection words already restored in
    earlier sentences of the same block; the return value is the updated
    count.  Restored nodes keep the protection word as ``text`` alignment but
    gain ``ioc_value`` / ``ioc_type`` annotations and have their ``lemma`` and
    ``text`` replaced by the original IOC string.
    """
    count = consumed
    for node in tree.nodes:
        if node.text.lower() != PROTECTION_WORD:
            continue
        record = protected.record_for(count)
        count += 1
        if record is None:
            raise ExtractionError(
                "more protection words in parsed trees than replacement "
                "records; text was modified between protection and parsing")
        node.text = record.ioc.value
        node.lemma = record.ioc.normalized
        node.annotations["ioc_value"] = record.ioc.normalized
        node.annotations["ioc_raw"] = record.ioc.value
        node.annotations["ioc_type"] = record.ioc.ioc_type
        node.annotations["ioc_offset"] = record.ioc.start
    return count


__all__ = ["PROTECTION_WORD", "ReplacementRecord", "ProtectedText",
           "protect_iocs", "restore_tree"]
