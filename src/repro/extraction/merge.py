"""IOC scan and merge across blocks (Algorithm 1, Step 8).

The same IOC may be written differently in different blocks of an article
("upload.tar" vs "/tmp/upload.tar").  This step scans every IOC mention in
the dependency trees of all blocks and merges mentions that denote the same
artifact, using character-level overlap plus word-vector similarity.  The
merge is deliberately conservative so that distinct-but-similar files
(``upload.tar`` vs ``upload.tar.bz2``) are never collapsed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..nlp.depparse import DependencyTree
from ..nlp.vectors import character_overlap, cosine_similarity
from .ioc import IOCType

#: Minimum cosine similarity (hashed trigram vectors) for a merge.
VECTOR_SIMILARITY_THRESHOLD = 0.6


@dataclass
class MergedIOC:
    """A canonical IOC produced by the merge step."""

    canonical: str
    ioc_type: IOCType
    mentions: list[str] = field(default_factory=list)

    def covers(self, value: str) -> bool:
        return value in self.mentions or value == self.canonical


def _same_artifact(left: str, right: str, ioc_type: IOCType) -> bool:
    """Decide whether two mention strings denote the same artifact."""
    a, b = left.lower(), right.lower()
    if a == b:
        return True
    if ioc_type in (IOCType.IP, IOCType.CIDR):
        return a.split("/")[0] == b.split("/")[0]
    shorter, longer = (a, b) if len(a) <= len(b) else (b, a)
    # A path and its suffix form ("/tmp/upload.tar" vs "upload.tar"): the
    # longer must end with "/<shorter>"; a bare extension difference
    # ("upload.tar" vs "upload.tar.bz2") fails this test by design.
    suffix_match = longer.endswith("/" + shorter) or \
        longer.endswith("\\" + shorter)
    if not suffix_match:
        return False
    if character_overlap(shorter, longer) < 0.3:
        return False
    return cosine_similarity(shorter, longer) >= VECTOR_SIMILARITY_THRESHOLD


def scan_and_merge_iocs(block_trees: list[list[DependencyTree]]
                        ) -> list[MergedIOC]:
    """Scan IOC mentions in every block's trees and merge equivalent ones.

    Returns the merged IOC list in first-mention order; each tree's IOC nodes
    gain a ``merged_ioc`` annotation holding the canonical value.
    """
    merged: list[MergedIOC] = []
    for trees in block_trees:
        for tree in trees:
            for node in tree.nodes:
                if "ioc_value" not in node.annotations:
                    continue
                value = node.annotations["ioc_value"]
                ioc_type = node.annotations.get("ioc_type")
                target = _find_merge_target(merged, value, ioc_type)
                if target is None:
                    target = MergedIOC(canonical=value, ioc_type=ioc_type,
                                       mentions=[value])
                    merged.append(target)
                else:
                    if value not in target.mentions:
                        target.mentions.append(value)
                    # Prefer the most specific (longest) mention as canonical.
                    if len(value) > len(target.canonical):
                        target.canonical = value
                node.annotations["merged_ioc"] = target.canonical
    # Second pass: canonical values may have changed after later mentions.
    for trees in block_trees:
        for tree in trees:
            for node in tree.nodes:
                if "ioc_value" not in node.annotations:
                    continue
                value = node.annotations["ioc_value"]
                for candidate in merged:
                    if candidate.covers(value):
                        node.annotations["merged_ioc"] = candidate.canonical
                        break
    return merged


#: Groups of IOC types whose mentions may denote the same artifact: a bare
#: file name ("upload.tar") and a full path ("/tmp/upload.tar") are merge
#: candidates even though the recognizer types them differently.
_COMPATIBLE_TYPE_GROUPS = (
    frozenset({IOCType.FILEPATH, IOCType.WINDOWS_FILEPATH,
               IOCType.FILENAME}),
    frozenset({IOCType.IP, IOCType.CIDR}),
)


def _types_compatible(left: IOCType, right: IOCType) -> bool:
    if left is right:
        return True
    return any(left in group and right in group
               for group in _COMPATIBLE_TYPE_GROUPS)


def _find_merge_target(merged: list[MergedIOC], value: str,
                       ioc_type: IOCType) -> MergedIOC | None:
    for candidate in merged:
        if not _types_compatible(candidate.ioc_type, ioc_type):
            continue
        if any(_same_artifact(value, mention, ioc_type)
               for mention in candidate.mentions):
            return candidate
    return None


__all__ = ["MergedIOC", "scan_and_merge_iocs",
           "VECTOR_SIMILARITY_THRESHOLD"]
