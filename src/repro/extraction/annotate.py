"""Tree annotation and simplification (Algorithm 1, Steps 5-6).

Annotation marks the nodes of interest in each dependency tree: restored IOC
nodes, candidate IOC-relation verbs (from the curated keyword list), and
pronouns that coreference resolution may later link to IOCs.  Simplification
then drops trees without any candidate relation verb and prunes subtrees
containing neither IOC nodes nor verbs — it never changes the extraction
outcome, only the amount of work later steps do.
"""

from __future__ import annotations

from ..nlp.depparse import DependencyTree

#: Curated list of candidate IOC relation verbs (lemmas), Section III-C
#: Step 5.  The verbs cover the system-level behaviours TBQL can express plus
#: their common OSCTI synonyms (mapping to operations happens at synthesis).
RELATION_VERB_KEYWORDS = frozenset({
    "read", "write", "open", "download", "upload", "execute", "run",
    "launch", "start", "spawn", "fork", "create", "drop", "delete",
    "remove", "rename", "move", "copy", "compress", "archive", "encrypt",
    "decrypt", "encode", "decode", "send", "transfer", "exfiltrate", "leak",
    "leaked", "receive", "connect", "communicate", "access", "scan",
    "steal", "gather", "collect", "extract", "obtain", "fetch", "retrieve",
    "install", "inject", "modify", "overwrite", "save", "store", "scrape",
    "crack",
})

#: Pronouns considered by coreference resolution.
COREF_PRONOUNS = frozenset({"it", "he", "she", "they", "this", "that",
                            "which", "itself"})

#: Generic nouns that, when used with a definite article ("the malware",
#: "the tool"), may corefer with a previously mentioned process-like IOC.
COREF_NOUNS = frozenset({"malware", "tool", "utility", "binary", "program",
                         "payload", "script", "file", "executable",
                         "cracker", "process"})


def annotate_tree(tree: DependencyTree) -> DependencyTree:
    """Annotate IOC nodes, candidate relation verbs, and pronouns in place."""
    for node in tree.nodes:
        if "ioc_value" in node.annotations:
            node.annotations["is_ioc"] = True
        if node.pos == "VERB" and node.lemma in RELATION_VERB_KEYWORDS:
            node.annotations["relation_verb"] = node.lemma
        if node.pos == "PRON" and node.text.lower() in COREF_PRONOUNS:
            node.annotations["coref_pronoun"] = True
        if node.pos in ("NOUN", "PROPN") and \
                node.lemma in COREF_NOUNS and \
                _has_definite_article(tree, node.index):
            node.annotations["coref_nominal"] = True
    return tree


def _has_definite_article(tree: DependencyTree, index: int) -> bool:
    return any(child.deprel == "det" and child.text.lower() in ("the", "this",
                                                                "that")
               for child in tree.children(index))


def has_candidate_verb(tree: DependencyTree) -> bool:
    """Return whether the tree contains a candidate relation verb."""
    return any("relation_verb" in node.annotations for node in tree.nodes)


def has_ioc(tree: DependencyTree) -> bool:
    """Return whether the tree contains at least one IOC node."""
    return any("is_ioc" in node.annotations for node in tree.nodes)


def simplify_tree(tree: DependencyTree) -> DependencyTree | None:
    """Prune irrelevant structure; return ``None`` for irrelevant trees.

    A tree is irrelevant when it contains no candidate relation verb (there
    is nothing to extract from it).  Otherwise subtrees containing neither an
    IOC node, a candidate verb, a pronoun of interest, nor any ancestor of
    those are detached.  Node indices are preserved.
    """
    if not has_candidate_verb(tree) and not has_ioc(tree):
        return None
    keep: set[int] = set()
    for node in tree.nodes:
        interesting = ("is_ioc" in node.annotations or
                       "relation_verb" in node.annotations or
                       "coref_pronoun" in node.annotations or
                       "coref_nominal" in node.annotations)
        if not interesting:
            continue
        for ancestor in tree.path_to_root(node.index):
            keep.add(ancestor.index)
    # Keep prepositions linking kept nodes (they sit between verb and pobj
    # and are already ancestors of the pobj, so nothing more to add).
    removable = {node.index for node in tree.nodes
                 if node.index not in keep and node.pos == "PUNCT"}
    removable |= {node.index for node in tree.nodes
                  if node.index not in keep and
                  node.deprel in ("det", "amod", "advmod", "case", "nmod")}
    if not removable:
        return tree
    return tree.remove_nodes(removable)


__all__ = ["RELATION_VERB_KEYWORDS", "COREF_PRONOUNS", "COREF_NOUNS",
           "annotate_tree", "simplify_tree", "has_candidate_verb", "has_ioc"]
