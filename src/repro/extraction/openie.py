"""General-purpose Open IE baselines (Table V comparison).

Two baselines mirror the evaluation's comparison systems:

* :class:`ClauseOpenIE` — in the spirit of Stanford Open IE: split sentences
  into clauses, find a verb per clause, and emit (argument, verb, argument)
  triples from the noun phrases to the verb's left and right.
* :class:`PatternOpenIE` — in the spirit of Open IE 5: template/pattern-based
  extraction over token sequences with a larger set of argument patterns (and
  correspondingly more spurious output).

Both operate on *generic* tokenization (punctuation splits tokens), which is
precisely why they shred IOC strings and score near zero on OSCTI text; the
optional ``ioc_protection`` flag reproduces the "+ IOC Protection" rows of
Table V by running protection before extraction and restoring the IOC strings
in the produced arguments.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..nlp.pos import POSTagger
from ..nlp.sentences import split_sentences
from ..nlp.tokenizer import tokenize
from .protection import PROTECTION_WORD, protect_iocs

_NOUN_TAGS = {"NOUN", "PROPN", "PRON", "NUM"}


@dataclass(frozen=True)
class OpenIETriple:
    """A generic (subject phrase, relation phrase, object phrase) triple."""

    subject: str
    relation: str
    obj: str


class _BaselineOpenIE:
    """Shared machinery for both baselines."""

    def __init__(self, ioc_protection: bool = False) -> None:
        self.ioc_protection = ioc_protection
        self._tagger = POSTagger()

    def extract(self, document: str) -> list[OpenIETriple]:
        """Extract triples from a document."""
        records = []
        if self.ioc_protection:
            protected = protect_iocs(document)
            text = protected.text
            records = [record.ioc.value for record in protected.records]
        else:
            text = document
        triples: list[OpenIETriple] = []
        consumed = 0
        for sentence in split_sentences(text):
            sentence_triples, consumed = self._extract_sentence(
                sentence.text, records, consumed)
            triples.extend(sentence_triples)
        return triples

    # Subclasses implement per-sentence extraction.
    def _extract_sentence(self, sentence: str, records: list[str],
                          consumed: int
                          ) -> tuple[list[OpenIETriple], int]:
        raise NotImplementedError

    def _restore(self, tokens: list[str], records: list[str],
                 consumed: int) -> tuple[list[str], int]:
        restored = []
        for token in tokens:
            if token.lower() == PROTECTION_WORD and consumed < len(records):
                restored.append(records[consumed])
                consumed += 1
            else:
                restored.append(token)
        return restored, consumed

    def entities(self, document: str) -> list[str]:
        """Entity mentions = argument phrases of the extracted triples."""
        values: list[str] = []
        for triple in self.extract(document):
            for phrase in (triple.subject, triple.obj):
                for word in phrase.split():
                    if word not in values:
                        values.append(word)
        return values


class ClauseOpenIE(_BaselineOpenIE):
    """Clause-splitting baseline (Stanford Open IE style)."""

    def _extract_sentence(self, sentence: str, records: list[str],
                          consumed: int
                          ) -> tuple[list[OpenIETriple], int]:
        tokens = tokenize(sentence)
        tags = self._tagger.tag(tokens)
        words = [token.text for token in tokens]
        words, consumed = self._restore(words, records, consumed)
        triples: list[OpenIETriple] = []
        # One triple per verb: nearest noun run to the left and right.
        for index, tag in enumerate(tags):
            if tag != "VERB":
                continue
            left = self._noun_run(words, tags, range(index - 1, -1, -1))
            right = self._noun_run(words, tags, range(index + 1, len(tags)))
            if left and right:
                # Open IE emits surface relation phrases, not canonical
                # operation lemmas — one reason its triples rarely line up
                # with labeled IOC relations.
                triples.append(OpenIETriple(subject=" ".join(left),
                                            relation=words[index],
                                            obj=" ".join(right)))
        return triples, consumed

    @staticmethod
    def _noun_run(words: list[str], tags: list[str], indices) -> list[str]:
        run: list[str] = []
        for index in indices:
            if tags[index] in _NOUN_TAGS:
                run.append(words[index])
                if len(run) == 3:
                    break
            elif run:
                break
        if indices and isinstance(indices, range) and indices.step == -1:
            run.reverse()
        return run


class PatternOpenIE(_BaselineOpenIE):
    """Pattern-matching baseline (Open IE 5 style).

    Emits more candidate triples than the clause baseline (verb + preposition
    relations, noun-noun appositions), trading precision for recall — the
    behaviour the paper observes for Open IE 5.
    """

    def _extract_sentence(self, sentence: str, records: list[str],
                          consumed: int
                          ) -> tuple[list[OpenIETriple], int]:
        tokens = tokenize(sentence)
        tags = self._tagger.tag(tokens)
        words = [token.text for token in tokens]
        words, consumed = self._restore(words, records, consumed)
        triples: list[OpenIETriple] = []
        nouns = [index for index, tag in enumerate(tags)
                 if tag in _NOUN_TAGS]
        verbs = [index for index, tag in enumerate(tags) if tag == "VERB"]
        for verb_index in verbs:
            before = [i for i in nouns if i < verb_index]
            after = [i for i in nouns if i > verb_index]
            for subject_index in before[-2:]:
                for object_index in after[:3]:
                    relation = words[verb_index]
                    # verb + preposition relation phrase ("read from").
                    between = [words[i] for i in range(verb_index + 1,
                                                       object_index)
                               if tags[i] == "ADP"]
                    if between:
                        relation = f"{relation} {between[-1]}"
                    triples.append(OpenIETriple(
                        subject=words[subject_index],
                        relation=relation,
                        obj=words[object_index]))
        return triples, consumed


__all__ = ["OpenIETriple", "ClauseOpenIE", "PatternOpenIE"]
