"""Coreference resolution across sentences of one block (Algorithm 1, Step 7).

OSCTI text frequently introduces a tool or file by its IOC and then refers to
it with a pronoun ("It wrote the gathered information to ...") or a definite
noun phrase ("the malware then connects to ...").  This step links such
mentions back to the IOC node they denote, within the same block, by checking
POS tags and dependency roles:

* a pronoun in subject position resolves to the most recent *actor* IOC — an
  IOC that was the grammatical subject or the instrument object of a
  use-class verb in an earlier (or the same) sentence;
* a definite noun phrase of a process-like noun ("the tool", "the malware")
  resolves the same way;
* pronouns in object position resolve to the most recent object-side IOC.
"""

from __future__ import annotations

from ..nlp.depparse import DependencyTree, USE_CLASS_VERBS

_SUBJECT_DEPRELS = {"nsubj", "nsubjpass"}
_OBJECT_DEPRELS = {"dobj", "obj", "pobj"}


def _is_actor_ioc(tree: DependencyTree, index: int) -> bool:
    node = tree.nodes_by_index(index)
    if "is_ioc" not in node.annotations:
        return False
    if node.deprel in _SUBJECT_DEPRELS:
        return True
    if node.deprel in _OBJECT_DEPRELS and node.head >= 0:
        head = tree.nodes_by_index(node.head)
        if head.pos == "VERB" and head.lemma in USE_CLASS_VERBS:
            return True
        # "... the launched process /usr/bin/gpg ..."
        if head.deprel in _OBJECT_DEPRELS:
            return True
    if node.deprel == "compound" and node.head >= 0:
        return _is_actor_ioc(tree, node.head)
    return False


def _ioc_nodes(tree: DependencyTree) -> list:
    return [node for node in tree.nodes if "is_ioc" in node.annotations]


def _group_contains_ioc(tree: DependencyTree, index: int) -> bool:
    """Return whether the noun group around ``index`` names an IOC."""
    node = tree.nodes_by_index(index)
    related = list(tree.children(index))
    if node.head >= 0:
        related.append(tree.nodes_by_index(node.head))
    return any("is_ioc" in other.annotations for other in related
               if other.deprel in ("compound", "appos") or
               node.deprel in ("compound", "appos"))


def resolve_coreferences(trees: list[DependencyTree]) -> int:
    """Resolve pronoun / nominal coreferences across ``trees`` in place.

    Resolution adds a ``coref_ioc`` annotation carrying the normalized IOC
    value (and ``coref_ioc_type``) to the referring node.  Returns the number
    of references resolved.
    """
    resolved = 0
    actor_history: list[tuple[str, object]] = []   # (value, type) pairs
    object_history: list[tuple[str, object]] = []
    for tree in trees:
        # First resolve references in this tree against *earlier* mentions.
        for node in tree.nodes:
            is_pronoun = "coref_pronoun" in node.annotations
            is_nominal = "coref_nominal" in node.annotations
            if not (is_pronoun or is_nominal):
                continue
            if "ioc_value" in node.annotations:
                continue
            # A nominal ("the tool", "the malware") only corefers when it is
            # the grammatical subject and its own noun group does not already
            # name an IOC ("the launched process /usr/bin/gpg" names one).
            if is_nominal and not is_pronoun:
                if node.deprel not in _SUBJECT_DEPRELS:
                    continue
                if _group_contains_ioc(tree, node.index):
                    continue
            if is_pronoun and node.deprel not in (
                    _SUBJECT_DEPRELS | {"dobj"}):
                continue
            antecedents = None
            if node.deprel in _SUBJECT_DEPRELS or is_nominal:
                antecedents = actor_history or object_history
            elif node.deprel in _OBJECT_DEPRELS:
                antecedents = object_history or actor_history
            else:
                antecedents = actor_history
            if not antecedents:
                continue
            value, ioc_type = antecedents[-1]
            node.annotations["coref_ioc"] = value
            node.annotations["coref_ioc_type"] = ioc_type
            resolved += 1
        # Then record this tree's IOC mentions for later sentences.
        for node in _ioc_nodes(tree):
            entry = (node.annotations["ioc_value"],
                     node.annotations.get("ioc_type"))
            if _is_actor_ioc(tree, node.index):
                actor_history.append(entry)
            else:
                object_history.append(entry)
    return resolved


__all__ = ["resolve_coreferences"]
