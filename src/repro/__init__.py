"""ThreatRaptor reproduction: cyber threat hunting with OSCTI.

Public API highlights:

* :class:`repro.hunting.ThreatRaptor` — end-to-end facade (ingest audit logs,
  extract threat behaviors from OSCTI text, synthesize and execute TBQL).
* :mod:`repro.extraction` — unsupervised NLP pipeline for threat behavior
  extraction (Algorithm 1).
* :mod:`repro.tbql` — the TBQL language: parser, synthesis, compilers,
  scheduler, exact and fuzzy execution.
* :mod:`repro.audit` / :mod:`repro.storage` — system auditing and database
  substrates.
* :mod:`repro.benchmark` — the 18-case evaluation benchmark and metrics.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
