"""Shared fixtures for the test suite.

Expensive artifacts (the data-leak case store, the extraction result of the
Figure-2 text) are session-scoped so the integration tests stay fast.
"""

from __future__ import annotations

import pytest

from repro.audit import AuditCollector, CollectorConfig, generate_benign_noise
from repro.benchmark import get_case
from repro.benchmark.case import CaseBuilder
from repro.extraction import extract_threat_behaviors
from repro.hunting import ThreatRaptor
from repro.storage import DualStore

#: The running example of the paper (Figure 2), reused by many tests.
DATA_LEAK_TEXT = (
    "As a first step, the attacker used /bin/tar to read user credentials "
    "from /etc/passwd. It wrote the gathered information to a file "
    "/tmp/upload.tar. Then, the attacker leveraged /bin/bzip2 utility to "
    "compress the tar file. /bin/bzip2 read from /tmp/upload.tar and wrote "
    "to /tmp/upload.tar.bz2. /usr/bin/gpg read from /tmp/upload.tar.bz2 and "
    "wrote the encrypted information to /tmp/upload. Finally, the attacker "
    "used /usr/bin/curl to read the data from /tmp/upload. He leaked the "
    "gathered sensitive information back to the C2 host by using "
    "/usr/bin/curl to connect to 192.168.29.128."
)

#: The eight ground-truth steps of the data-leak attack, in order.
DATA_LEAK_EDGES = [
    ("/bin/tar", "read", "/etc/passwd"),
    ("/bin/tar", "write", "/tmp/upload.tar"),
    ("/bin/bzip2", "read", "/tmp/upload.tar"),
    ("/bin/bzip2", "write", "/tmp/upload.tar.bz2"),
    ("/usr/bin/gpg", "read", "/tmp/upload.tar.bz2"),
    ("/usr/bin/gpg", "write", "/tmp/upload"),
    ("/usr/bin/curl", "read", "/tmp/upload"),
    ("/usr/bin/curl", "connect", "192.168.29.128"),
]


#: The HTTP front ends the service tests run against.
SERVER_BACKENDS = ["threaded", "asyncio"]


def start_backend_server(service, backend, **kwargs):
    """Start a server of the given backend on a daemon thread.

    Returns ``(server, thread)``; stop with :func:`stop_backend_server`.
    Both backends bind an ephemeral port in their constructor, so
    ``server.server_address`` is valid immediately.
    """
    import threading

    from repro.service import AsyncThreatHuntingServer, ThreatHuntingServer

    if backend == "asyncio":
        server = AsyncThreatHuntingServer(("127.0.0.1", 0), service,
                                          **kwargs)
    else:
        server = ThreatHuntingServer(("127.0.0.1", 0), service, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    if backend == "asyncio":
        assert server.wait_ready(10)
    return server, thread


def stop_backend_server(server, thread) -> None:
    """Shut a test server down and release its resources."""
    server.shutdown()
    server.server_close()
    thread.join(timeout=10)


def record_data_leak_attack(collector: AuditCollector) -> None:
    """Replay the data-leak attack steps through a collector."""
    tar = collector.spawn_process("/bin/tar")
    collector.read_file(tar, "/etc/passwd", burst=3)
    collector.write_file(tar, "/tmp/upload.tar", burst=3)
    bzip2 = collector.spawn_process("/bin/bzip2")
    collector.read_file(bzip2, "/tmp/upload.tar")
    collector.write_file(bzip2, "/tmp/upload.tar.bz2")
    gpg = collector.spawn_process("/usr/bin/gpg")
    collector.read_file(gpg, "/tmp/upload.tar.bz2")
    collector.write_file(gpg, "/tmp/upload")
    curl = collector.spawn_process("/usr/bin/curl")
    collector.read_file(curl, "/tmp/upload")
    collector.connect_ip(curl, "192.168.29.128")


@pytest.fixture(scope="session")
def data_leak_events():
    """Malicious data-leak events plus a small benign background."""
    collector = AuditCollector(CollectorConfig(seed=11))
    record_data_leak_attack(collector)
    return collector.events() + generate_benign_noise(num_sessions=15,
                                                      seed=23)


@pytest.fixture(scope="session")
def data_leak_store(data_leak_events):
    """A dual store loaded with the data-leak events."""
    store = DualStore()
    store.load_events(data_leak_events)
    yield store
    store.close()


@pytest.fixture(scope="session")
def data_leak_extraction():
    """Extraction result for the Figure-2 OSCTI text."""
    return extract_threat_behaviors(DATA_LEAK_TEXT)


@pytest.fixture(scope="session")
def data_leak_raptor(data_leak_events):
    """A ThreatRaptor instance with the data-leak events ingested."""
    raptor = ThreatRaptor()
    raptor.ingest_events(data_leak_events)
    yield raptor
    raptor.store.close()


@pytest.fixture(scope="session")
def clearscope_built():
    """The smallest benchmark case, materialized (for fast case tests)."""
    return CaseBuilder().build(get_case("tc_clearscope_3"),
                               benign_sessions=5)
