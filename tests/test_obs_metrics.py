"""Metrics registry units + Prometheus exposition round-trips.

Every rendering test goes through :mod:`tests.promtext`, the same
minimal scraper-grade validator the service tests use, so the registry
and the validator keep each other honest.
"""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (DEFAULT_BUCKETS, MetricsRegistry,
                               get_registry, set_registry)

from .promtext import ExpositionError, parse_prometheus_text


@pytest.fixture()
def registry():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_accumulates(self, registry):
        counter = registry.counter("repro_t_total", "a counter")
        counter.inc()
        counter.inc(2.5)
        assert counter.labels().value == 3.5

    def test_counter_rejects_decrease(self, registry):
        counter = registry.counter("repro_t_total", "a counter")
        with pytest.raises(ValueError):
            counter.labels().inc(-1)

    def test_gauge_set_inc_dec(self, registry):
        gauge = registry.gauge("repro_g", "a gauge")
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(3)
        assert gauge.labels().value == 12.0

    def test_histogram_buckets(self, registry):
        hist = registry.histogram("repro_h", "a histogram",
                                  buckets=(1.0, 5.0))
        for value in (0.5, 3.0, 100.0):
            hist.observe(value)
        counts, total, count = hist.labels().snapshot()
        assert counts == [1, 1]       # per-bucket, +Inf implicit
        assert total == 103.5 and count == 3

    def test_labelled_children_are_independent(self, registry):
        counter = registry.counter("repro_l_total", "labelled",
                                   labels=("kind",))
        counter.labels("a").inc()
        counter.labels("b").inc(2)
        assert counter.labels("a").value == 1
        assert counter.labels("b").value == 2

    def test_label_arity_enforced(self, registry):
        counter = registry.counter("repro_l_total", "labelled",
                                   labels=("kind",))
        with pytest.raises(ValueError):
            counter.labels("a", "b")
        with pytest.raises(ValueError):
            counter.inc()             # labelled family: no solo child


class TestRegistration:
    def test_get_or_create_is_idempotent(self, registry):
        first = registry.counter("repro_i_total", "idempotent")
        second = registry.counter("repro_i_total", "idempotent")
        assert first is second

    def test_kind_conflict_raises(self, registry):
        registry.counter("repro_k_total", "as counter")
        with pytest.raises(ValueError):
            registry.gauge("repro_k_total", "as gauge")

    def test_label_conflict_raises(self, registry):
        registry.counter("repro_c_total", "x", labels=("a",))
        with pytest.raises(ValueError):
            registry.counter("repro_c_total", "x", labels=("b",))

    def test_invalid_names_rejected(self, registry):
        with pytest.raises(ValueError):
            registry.counter("0bad", "leading digit")
        with pytest.raises(ValueError):
            registry.counter("has-dash_total", "dash")
        with pytest.raises(ValueError):
            registry.counter("repro_ok_total", "bad label",
                             labels=("le",))

    def test_bucket_validation(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro_b", "bad", buckets=(5.0, 1.0))
        with pytest.raises(ValueError):
            registry.histogram("repro_b2", "empty", buckets=())

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)
        assert get_registry() is previous


class TestExposition:
    def test_rendered_output_validates(self, registry):
        registry.counter("repro_req_total", "requests",
                         labels=("path", "status"),
                         ).labels("/query", "200").inc(7)
        registry.gauge("repro_uptime_seconds", "uptime").set(1.25)
        hist = registry.histogram("repro_lat_seconds", "latency",
                                  labels=("path",))
        hist.labels("/query").observe(0.004)
        hist.labels("/query").observe(42.0)
        families = parse_prometheus_text(registry.render())
        assert families["repro_req_total"]["type"] == "counter"
        samples = families["repro_req_total"]["samples"]
        assert samples == [("repro_req_total",
                            {"path": "/query", "status": "200"}, 7.0)]
        latency = families["repro_lat_seconds"]
        bucket_bounds = [labels["le"] for name, labels, _value
                         in latency["samples"]
                         if name.endswith("_bucket")]
        assert len(bucket_bounds) == len(DEFAULT_BUCKETS) + 1
        assert bucket_bounds[-1] == "+Inf"

    def test_label_value_escaping_round_trips(self, registry):
        nasty = 'quote " backslash \\ newline \n end'
        registry.counter("repro_esc_total", "escapes",
                         labels=("text",)).labels(nasty).inc()
        families = parse_prometheus_text(registry.render())
        ((_name, labels, value),) = families["repro_esc_total"]["samples"]
        assert labels["text"] == nasty and value == 1.0

    def test_help_and_type_precede_every_sample(self, registry):
        registry.counter("repro_a_total", "a").inc()
        registry.gauge("repro_b", "b").set(2)
        lines = registry.render().splitlines()
        seen_help: set[str] = set()
        for line in lines:
            if line.startswith("# HELP "):
                seen_help.add(line.split(" ")[2])
            elif not line.startswith("#"):
                name = line.split("{")[0].split(" ")[0]
                assert name in seen_help

    def test_validator_rejects_bad_exposition(self):
        with pytest.raises(ExpositionError):
            parse_prometheus_text("orphan_metric 1\n")
        with pytest.raises(ExpositionError):
            parse_prometheus_text(
                "# HELP x h\n# TYPE x counter\nx{bad-name=\"v\"} 1\n")

    def test_empty_registry_renders_empty(self, registry):
        assert registry.render() == ""
        assert parse_prometheus_text("") == {}

    def test_thread_safety_under_contention(self, registry):
        counter = registry.counter("repro_race_total", "contended")
        hist = registry.histogram("repro_race_seconds", "contended")

        def hammer():
            for _ in range(500):
                counter.inc()
                hist.observe(0.01)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.labels().value == 4000
        _counts, _total, count = hist.labels().snapshot()
        assert count == 4000
        parse_prometheus_text(registry.render())
