"""Live service tests: ingest/rules/alerts over HTTP on a writable store.

Covers the streaming endpoints (``POST /ingest``, ``POST /rules``,
``DELETE /rules/{id}``, ``GET /rules``, ``GET /alerts``), the 409 answer
when streaming is disabled, result-cache invalidation under live ingest
observable via ``GET /stats`` (``data_version`` + hit/miss counters), and
a concurrent ingest-vs-query consistency smoke under the single-writer /
multi-reader lock.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.audit import AuditCollector, CollectorConfig
from repro.audit.logfmt import format_log
from repro.errors import ServiceError
from repro.service import QueryService, ServiceClient
from repro.storage import DualStore
from repro.streaming import DetectionEngine, FlushPolicy

from .conftest import (SERVER_BACKENDS, start_backend_server,
                       stop_backend_server)

EXFIL_RULE = ('proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
              'proc q["%/usr/bin/curl%"] connect ip i as e2 '
              'with e1 before e2 return p, q, i.dstip')

TAR_QUERY = 'proc p["%/bin/tar%"] read file f as e1 return distinct f'


def _attack_log_parts() -> tuple[str, str]:
    collector = AuditCollector(CollectorConfig(seed=5))
    tar = collector.spawn_process("/bin/tar")
    collector.read_file(tar, "/etc/passwd", burst=2)
    first = list(collector.events())
    collector.advance(10.0)
    curl = collector.spawn_process("/usr/bin/curl")
    collector.connect_ip(curl, "192.168.29.128")
    second = collector.events()[len(first):]
    return format_log(first), format_log(second)


@pytest.fixture(params=SERVER_BACKENDS)
def live_server(request):
    store = DualStore()
    engine = DetectionEngine(store,
                             policy=FlushPolicy(max_events=1,
                                                max_seconds=0))
    service = QueryService(store, engine=engine)
    server, thread = start_backend_server(service, request.param)
    host, port = server.server_address[:2]
    with ServiceClient(f"http://{host}:{port}") as client:
        yield client, service, engine
    stop_backend_server(server, thread)
    store.close()


class TestLiveEndpoints:
    def test_ingest_rules_alerts_roundtrip(self, live_server):
        client, _service, engine = live_server
        first_log, second_log = _attack_log_parts()
        rule = client.add_rule(EXFIL_RULE, rule_id="exfil")["rule"]
        assert rule["id"] == "exfil"
        assert [r["id"] for r in client.rules()["rules"]] == ["exfil"]

        first = client.ingest(first_log)
        assert first["accepted"] > 0
        assert first["alerts"] == []
        second = client.ingest(second_log)
        assert second["stored"] > 0
        assert len(second["alerts"]) == 1
        alert = second["alerts"][0]
        assert alert["rule_id"] == "exfil"
        assert alert["rows"]
        signatures = {(event["subject"], event["operation"],
                       event["object"])
                      for event in alert["matched_events"]}
        assert ("/usr/bin/curl", "connect", "192.168.29.128") in signatures

        listed = client.alerts()
        assert len(listed["alerts"]) == 1
        assert listed["next_since_id"] == alert["alert_id"]
        assert client.alerts(since_id=alert["alert_id"])["alerts"] == []
        assert engine.alerts.counters()["fired"] == 1

    def test_delete_rule_stops_detection(self, live_server):
        client, _service, _engine = live_server
        first_log, second_log = _attack_log_parts()
        client.add_rule(EXFIL_RULE, rule_id="exfil")
        removed = client.delete_rule("exfil")["removed"]
        assert removed["id"] == "exfil"
        client.ingest(first_log)
        response = client.ingest(second_log)
        assert response["alerts"] == []
        assert client.rules()["rules"] == []
        with pytest.raises(ServiceError) as excinfo:
            client.delete_rule("exfil")
        assert excinfo.value.status == 404

    def test_rule_id_with_url_special_characters(self, live_server):
        client, _service, _engine = live_server
        rule_id = "my rule/v1"
        client.add_rule(TAR_QUERY, rule_id=rule_id)
        assert [r["id"] for r in client.rules()["rules"]] == [rule_id]
        assert client.delete_rule(rule_id)["removed"]["id"] == rule_id
        assert client.rules()["rules"] == []

    def test_invalid_rule_is_400(self, live_server):
        client, _service, _engine = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.add_rule("this { is not TBQL")
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._post("/rules", {})
        assert excinfo.value.status == 400

    def test_invalid_rule_carries_diagnostic(self, live_server):
        client, _service, _engine = live_server
        with pytest.raises(ServiceError) as excinfo:
            client.add_rule("proc p read fil f return p")
        diagnostic = excinfo.value.diagnostic
        assert diagnostic is not None
        assert (diagnostic["line"], diagnostic["column"]) == (1, 13)
        assert diagnostic["context"] == "proc p read fil f return p"

    def test_query_sees_live_data_and_cache_invalidates(self, live_server):
        client, _service, _engine = live_server
        first_log, second_log = _attack_log_parts()
        empty = client.query(TAR_QUERY)
        assert empty["result"]["rows"] == []
        assert client.query(TAR_QUERY)["cached"] is True

        stats_before = client.stats()
        client.ingest(first_log + second_log)
        stats_after = client.stats()
        assert stats_after["data_version"] > stats_before["data_version"]
        assert stats_after["streaming"]["events_stored"] > 0
        for cache in ("plan_cache", "result_cache"):
            assert {"hits", "misses"} <= set(stats_after[cache])

        refreshed = client.query(TAR_QUERY)
        assert refreshed["cached"] is False     # invalidated by ingest
        assert refreshed["result"]["rows"] == [{"f.name": "/etc/passwd"}]

    def test_malformed_ingest_lines_are_reported(self, live_server):
        client, _service, _engine = live_server
        response = client.ingest("not an audit record\nalso garbage\n")
        assert response["accepted"] == 0
        assert response["stored"] == 0
        assert response["lines"] == 2
        assert response["malformed"] == 2
        assert response["parse_errors"]

    def test_stats_exposes_streaming_section(self, live_server):
        client, _service, _engine = live_server
        stats = client.stats()
        streaming = stats["streaming"]
        assert {"rules", "alerts", "batches", "watermark",
                "events_stored", "pending_runs"} <= set(streaming)
        assert stats["counters"]["ingests"] == 0

    def test_concurrent_ingest_and_query_consistency(self, live_server):
        client, _service, _engine = live_server
        collector = AuditCollector(CollectorConfig(seed=41))
        shells = [collector.spawn_process("/bin/bash") for _ in range(4)]
        batches = []
        for index in range(12):
            collector.advance(5.0)
            collector.read_file(shells[index % 4],
                                f"/var/data/file_{index}")
            batches.append(format_log(collector.events()[-1:]))
        query = 'proc p["%/bin/bash%"] read file f as e1 return distinct f'
        errors: list[str] = []

        def do_ingest(batch: str) -> None:
            client.ingest(batch)

        def do_query(_index: int) -> None:
            response = client.query(query, use_cache=False)
            rows = response["result"]["rows"]
            if len(rows) != len({tuple(sorted(r.items())) for r in rows}):
                errors.append("duplicate rows observed")

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [pool.submit(do_ingest, batch) for batch in batches]
            futures += [pool.submit(do_query, index) for index in range(24)]
            for future in futures:
                future.result(timeout=60)
        assert not errors
        final = client.query(query, use_cache=False)
        assert len(final["result"]["rows"]) >= 1


class TestAlertsValidation:
    @pytest.mark.parametrize("query_string", [
        "since_id=abc", "since_id=1.5", "limit=xyz",
        "since_id=abc&limit=2",
    ])
    def test_non_integer_parameters_answer_400(self, live_server,
                                               query_string):
        """Bad ``since_id``/``limit`` must be a 400 with the shared JSON
        error shape — never an unhandled 500."""
        import json as json_module
        from urllib.error import HTTPError
        from urllib.request import urlopen
        client, _service, _engine = live_server
        with pytest.raises(HTTPError) as excinfo:
            urlopen(f"{client.base_url}/alerts?{query_string}")
        assert excinfo.value.code == 400
        body = json_module.loads(excinfo.value.read().decode("utf-8"))
        assert "error" in body
        assert "integer" in body["error"]

    def test_valid_parameters_still_answer(self, live_server):
        client, _service, _engine = live_server
        assert client.alerts(since_id=0)["alerts"] == []


class TestStreamingDisabled:
    @pytest.mark.parametrize("backend", SERVER_BACKENDS)
    def test_endpoints_answer_409_without_engine(self, backend):
        store = DualStore()
        service = QueryService(store)
        server, thread = start_backend_server(service, backend)
        host, port = server.server_address[:2]
        client = ServiceClient(f"http://{host}:{port}")
        try:
            for call in (lambda: client.ingest("x"),
                         lambda: client.add_rule(TAR_QUERY),
                         lambda: client.rules(),
                         lambda: client.alerts(),
                         lambda: client.delete_rule("any")):
                with pytest.raises(ServiceError) as excinfo:
                    call()
                assert excinfo.value.status == 409
            # Plain serving still works and reports its data_version.
            assert client.stats()["data_version"] == store.data_version
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)
            store.close()
