"""Segmented store tests: sealing, pruning, compaction, snapshots, CLI.

The segmented layout partitions the event history into immutable
time-bounded segments; these tests pin the structural invariants (event
ids partition contiguously, segment files are standalone, manifests
carry the real time bounds), the pruning rule (conservative w.r.t. the
compiled window predicate), compaction, the v2 snapshot format (plus
backward-compatible v1 opens), the service surface (``--workers``,
``GET /stats`` segments section), and the CLI satellites.
"""

from __future__ import annotations

import json
import sqlite3
from operator import attrgetter
from pathlib import Path

import pytest

from repro.audit.workload import generate_benign_noise
from repro.errors import StorageError
from repro.storage import DualStore
from repro.storage.dualstore import (SNAPSHOT_FORMAT_VERSION,
                                     SNAPSHOT_MANIFEST,
                                     SNAPSHOT_SEGMENTS_DIR)
from repro.storage.graph.graphdb import PropertyGraph
from repro.storage.segments import SegmentInfo, plan_compaction
from repro.tbql.executor import TBQLExecutor

QUERY = 'proc p read file f return distinct p'


def _events(sessions: int = 25, seed: int = 7):
    events = generate_benign_noise(sessions, seed=seed)
    events.sort(key=attrgetter("start_time", "event_id"))
    return events


def _build_pair(events, batches: int = 5):
    """Monolithic + segmented stores fed identically (same seals)."""
    mono = DualStore()
    seg = DualStore(layout="segmented")
    step = len(events) // batches + 1
    for index in range(0, len(events), step):
        for store in (mono, seg):
            store.append_events(events[index:index + step])
            store.flush_appends()
    return mono, seg


@pytest.fixture()
def store_pair():
    mono, seg = _build_pair(_events())
    yield mono, seg
    mono.close()
    seg.close()


class TestSealing:
    def test_flush_appends_seals_contiguous_segments(self, store_pair):
        mono, seg = store_pair
        view = seg.segment_view()
        assert view is not None
        assert len(view.sealed) == 5
        assert view.sealed[0].first_event_id == 1
        for left, right in zip(view.sealed, view.sealed[1:]):
            assert right.first_event_id == left.last_event_id + 1
        assert view.sealed_events == seg.relational.count_events()
        assert view.active_events == 0
        assert view.active_first_event_id == \
            view.sealed[-1].last_event_id + 1
        # Backends hold the same data as the identically fed monolith.
        assert seg.relational.count_events() == \
            mono.relational.count_events()
        assert seg.graph.num_edges() == mono.graph.num_edges()

    def test_segment_files_are_standalone(self, store_pair):
        _mono, seg = store_pair
        for info in seg.segment_view().sealed:
            connection = sqlite3.connect(info.sqlite_path)
            low, high, count = connection.execute(
                "SELECT MIN(id), MAX(id), COUNT(*) FROM events").fetchone()
            assert (low, high) == (info.first_event_id,
                                   info.last_event_id)
            assert count == info.event_count
            # Every referenced entity row ships with the segment.
            dangling = connection.execute(
                "SELECT COUNT(*) FROM events e WHERE NOT EXISTS "
                "(SELECT 1 FROM entities s WHERE s.id = e.subject_id) "
                "OR NOT EXISTS (SELECT 1 FROM entities o "
                "WHERE o.id = e.object_id)").fetchone()[0]
            assert dangling == 0
            bounds = connection.execute(
                "SELECT MIN(start_time), MAX(start_time), MIN(end_time), "
                "MAX(end_time) FROM events").fetchone()
            assert bounds == (info.min_start_time, info.max_start_time,
                              info.min_end_time, info.max_end_time)
            connection.close()
            graph = PropertyGraph.load(info.graph_path)
            assert graph.num_edges() == info.event_count

    def test_monolithic_store_has_no_view(self, store_pair):
        mono, _seg = store_pair
        assert mono.segment_view() is None
        with pytest.raises(StorageError):
            mono.seal_active_segment()
        with pytest.raises(StorageError):
            mono.compact()

    def test_unknown_layout_rejected(self):
        with pytest.raises(ValueError):
            DualStore(layout="sharded")

    def test_empty_flush_seals_nothing(self):
        with DualStore(layout="segmented") as store:
            store.flush_appends()
            assert store.segment_view() is None
            assert store.seal_active_segment() is None

    def test_reload_drops_old_segments(self, store_pair):
        _mono, seg = store_pair
        old = seg.segment_view().sealed
        events = _events(sessions=5, seed=13)
        seg.load_events(events)
        assert seg.segment_view() is None       # all data active again
        seg.flush_appends()
        view = seg.segment_view()
        assert len(view.sealed) == 1
        assert view.sealed[0].first_event_id == 1
        # Old segment files are gone and names were not reused.
        assert view.sealed[0].name not in {info.name for info in old}
        for info in old:
            assert not Path(info.directory).exists()


class TestExportRobustness:
    def test_failed_export_detaches_and_reports(self, store_pair,
                                                monkeypatch, tmp_path):
        """A mid-export SQL failure must surface as StorageError and
        must not leave the 'segment' schema attached (which would break
        every later export on the connection)."""
        _mono, seg = store_pair
        import repro.storage.relational.database as database_module
        original = database_module.all_ddl_for

        def broken_ddl(schema=None):
            return original(schema) + ["INSERT INTO missing VALUES (1)"]

        monkeypatch.setattr(database_module, "all_ddl_for", broken_ddl)
        with pytest.raises(StorageError):
            seg.relational.export_segment(tmp_path / "broken.sqlite", 1, 5)
        monkeypatch.setattr(database_module, "all_ddl_for", original)
        # The connection must be fully recovered: same export now works.
        seg.relational.export_segment(tmp_path / "ok.sqlite", 1, 5)
        connection = sqlite3.connect(tmp_path / "ok.sqlite")
        assert connection.execute(
            "SELECT COUNT(*) FROM events").fetchone()[0] == 5
        connection.close()


class TestSealPolicy:
    def test_request_seals_do_not_cut_segments(self):
        """POST /ingest-style seals flush merge runs but must not
        produce one tiny segment per request; only the seal_every
        policy (and snapshot saves) cuts segments."""
        from repro.streaming import DetectionEngine
        events = _events(sessions=6, seed=21)
        step = len(events) // 6 + 1
        store = DualStore(layout="segmented", retain_events=False)
        engine = DetectionEngine(store, seal_every=0)
        for index in range(0, len(events), step):
            engine.process_batch(events[index:index + step], seal=True)
        assert store.segment_stats()["sealed_segments"] == 0
        assert engine.seals == 0
        store.close()

    def test_seal_every_policy_cuts_segments(self):
        from repro.streaming import DetectionEngine
        events = _events(sessions=6, seed=21)
        step = len(events) // 6 + 1
        store = DualStore(layout="segmented", retain_events=False)
        engine = DetectionEngine(store, seal_every=2)
        for index in range(0, len(events), step):
            engine.process_batch(events[index:index + step], seal=True)
        assert store.segment_stats()["sealed_segments"] == 3
        assert engine.seals == 3
        assert engine.stats()["sealed_segments"] == 3
        store.close()


class TestPruning:
    def test_overlap_rule_matches_sql_predicate(self):
        info = SegmentInfo(
            name="seg-000001", directory="/tmp/none", first_event_id=1,
            last_event_id=10, event_count=10, first_new_entity_id=1,
            last_new_entity_id=5, new_entity_count=5,
            min_start_time=100.0, max_start_time=200.0,
            min_end_time=105.0, max_end_time=210.0)
        assert info.overlaps_window(None)
        assert info.overlaps_window((None, None))
        # start_time >= earliest: scannable while max_start >= earliest.
        assert info.overlaps_window((200.0, None))
        assert not info.overlaps_window((200.1, None))
        # end_time <= latest: scannable while min_end <= latest.
        assert info.overlaps_window((None, 105.0))
        assert not info.overlaps_window((None, 104.9))
        assert info.overlaps_window((150.0, 180.0))
        assert not info.overlaps_window((300.0, 400.0))

    def test_windowed_query_prunes_and_matches(self, store_pair):
        mono, seg = store_pair
        events = seg.segment_view().sealed
        cut = events[0].max_end_time
        text = f'before {cut} proc p read file f return distinct p'
        mono_exec = TBQLExecutor(mono)
        seg_exec = TBQLExecutor(seg)
        expected = mono_exec.execute(text)
        got = seg_exec.execute(text)
        assert got.rows == expected.rows
        assert got.matched_events == expected.matched_events
        step = got.plan[0]
        assert step.segments_scanned is not None
        assert step.segments_scanned < len(events)
        assert step.segments_scanned + step.segments_pruned == len(events)
        # Monolithic plans carry no segment counts.
        assert expected.plan[0].segments_scanned is None
        assert "segments_scanned" in step.as_dict()
        seg_exec.close()

    def test_disjoint_window_scans_nothing(self, store_pair):
        _mono, seg = store_pair
        horizon = seg.segment_view().sealed[-1].max_end_time + 1000.0
        executor = TBQLExecutor(seg)
        result = executor.execute(
            f'after {horizon} proc p read file f return p')
        assert result.rows == []
        assert result.plan[0].segments_scanned == 0
        assert result.plan[0].segments_pruned == 5
        executor.close()

    def test_active_tail_is_scanned(self, store_pair):
        mono, seg = store_pair
        extra = _events(sessions=3, seed=99)
        for store in (mono, seg):
            store.append_events(extra)
            store._flush_stream() if store is seg else \
                store.flush_appends()
        # seg: appended events stored but NOT sealed (no flush_appends).
        view = seg.segment_view()
        assert view.active_events > 0
        expected = TBQLExecutor(mono).execute(QUERY)
        executor = TBQLExecutor(seg)
        got = executor.execute(QUERY)
        assert got.rows == expected.rows
        assert got.matched_events == expected.matched_events
        executor.close()


class TestCompaction:
    def test_plan_compaction_groups_adjacent_small_runs(self):
        def info(name, count):
            return SegmentInfo(
                name=name, directory="/tmp/none", first_event_id=0,
                last_event_id=0, event_count=count, first_new_entity_id=0,
                last_new_entity_id=-1, new_entity_count=0,
                min_start_time=0.0, max_start_time=0.0, min_end_time=0.0,
                max_end_time=0.0)
        small = [info(f"s{i}", 10) for i in range(4)]
        big = info("big", 100)
        runs = plan_compaction([small[0], small[1], big, small[2],
                                small[3]], min_events=50)
        assert [[m.name for m in run] for run in runs] == \
            [["s0", "s1"], ["s2", "s3"]]
        # A lone small segment between barriers is left alone.
        assert plan_compaction([small[0], big], min_events=50) == []
        # Runs close as soon as they reach the threshold.
        runs = plan_compaction(small, min_events=20)
        assert [[m.name for m in run] for run in runs] == \
            [["s0", "s1"], ["s2", "s3"]]

    def test_compact_preserves_results(self, store_pair):
        mono, seg = store_pair
        expected = TBQLExecutor(mono).execute(QUERY)
        old = seg.segment_view().sealed
        report = seg.compact(min_events=10 ** 9)
        assert report["segments_after"] == 1
        view = seg.segment_view()
        merged = view.sealed[0]
        assert merged.first_event_id == 1
        assert merged.last_event_id == old[-1].last_event_id
        assert merged.event_count == sum(i.event_count for i in old)
        assert merged.min_start_time == min(i.min_start_time for i in old)
        assert merged.max_end_time == max(i.max_end_time for i in old)
        for info in old:
            assert not Path(info.directory).exists()
        executor = TBQLExecutor(seg)
        got = executor.execute(QUERY)
        assert got.rows == expected.rows
        assert got.matched_events == expected.matched_events
        executor.close()


class TestSnapshotV2:
    def test_roundtrip_segmented(self, store_pair, tmp_path):
        mono, seg = store_pair
        snapshot = tmp_path / "snap"
        manifest = seg.save(snapshot)
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert manifest["layout"] == "segmented"
        assert len(manifest["segments"]) == 5
        assert (snapshot / SNAPSHOT_SEGMENTS_DIR / "seg-000001" /
                "relational.sqlite").is_file()
        expected = TBQLExecutor(mono).execute(QUERY)
        with DualStore.open(snapshot) as reopened:
            assert reopened.layout == "segmented"
            assert reopened.read_only
            view = reopened.segment_view()
            assert len(view.sealed) == 5
            executor = TBQLExecutor(reopened, workers=2)
            got = executor.execute(QUERY)
            assert got.rows == expected.rows
            assert got.matched_events == expected.matched_events
            executor.close()
            with pytest.raises(StorageError):
                reopened.compact()

    def test_writable_reopen_appends_new_segments(self, store_pair,
                                                  tmp_path):
        _mono, seg = store_pair
        snapshot = tmp_path / "snap"
        seg.save(snapshot)
        extra = _events(sessions=3, seed=42)
        with DualStore.open(snapshot, read_only=False) as writable:
            assert writable.layout == "segmented"
            before = len(writable.segment_view().sealed)
            writable.append_events(extra)
            writable.flush_appends()
            view = writable.segment_view()
            assert len(view.sealed) == before + 1
            # New segments land in the store's own home, not the
            # snapshot directory (which stays immutable).
            new_home = Path(view.sealed[-1].directory)
            assert not new_home.is_relative_to(snapshot.resolve())
        assert not (snapshot / SNAPSHOT_SEGMENTS_DIR /
                    view.sealed[-1].name).exists()

    def test_monolithic_snapshot_has_no_segments(self, store_pair,
                                                 tmp_path):
        mono, _seg = store_pair
        snapshot = tmp_path / "snap"
        manifest = mono.save(snapshot)
        assert manifest["layout"] == "monolithic"
        assert "segments" not in manifest
        with DualStore.open(snapshot) as reopened:
            assert reopened.layout == "monolithic"
            assert reopened.segment_view() is None

    def test_v1_manifest_still_opens(self, store_pair, tmp_path):
        mono, _seg = store_pair
        snapshot = tmp_path / "snap"
        mono.save(snapshot)
        manifest_path = snapshot / SNAPSHOT_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format_version"] = 1
        del manifest["layout"]
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        expected = TBQLExecutor(mono).execute(QUERY)
        with DualStore.open(snapshot) as reopened:
            assert reopened.layout == "monolithic"
            assert reopened.segment_view() is None
            got = TBQLExecutor(reopened).execute(QUERY)
            assert got.rows == expected.rows

    def test_corrupt_segment_coverage_rejected(self, store_pair,
                                               tmp_path):
        _mono, seg = store_pair
        snapshot = tmp_path / "snap"
        seg.save(snapshot)
        manifest_path = snapshot / SNAPSHOT_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["segments"] = manifest["segments"][:-1]
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StorageError):
            DualStore.open(snapshot)

    def test_explicit_segment_dir_is_kept(self, tmp_path):
        home = tmp_path / "segments-home"
        events = _events(sessions=4, seed=3)
        with DualStore(layout="segmented", segment_dir=home) as store:
            store.append_events(events)
            store.flush_appends()
            assert len(store.segment_view().sealed) == 1
        # Caller-provided directories survive close().
        assert home.is_dir()
        assert any(home.iterdir())


class TestParallelScatter:
    def test_workers_match_serial(self, store_pair):
        _mono, seg = store_pair
        serial = TBQLExecutor(seg, workers=1)
        parallel = TBQLExecutor(seg, workers=4)
        for text in (QUERY,
                     'proc p write file f as e1 '
                     'proc p read file g as e2 return distinct p'):
            a = serial.execute(text)
            b = parallel.execute(text)
            assert a.rows == b.rows
            assert a.matched_events == b.matched_events
            assert a.per_pattern_matches == b.per_pattern_matches
        serial.close()
        parallel.close()

    def test_close_is_idempotent(self, store_pair):
        _mono, seg = store_pair
        executor = TBQLExecutor(seg, workers=2)
        executor.execute(QUERY)
        executor.close()
        executor.close()


class TestCLI:
    def test_ingest_empty_log_exits_zero(self, tmp_path, capsys):
        from repro.cli import main
        log = tmp_path / "empty.log"
        log.write_text("   \n\n", encoding="utf-8")
        assert main(["ingest", "--log", str(log), "--stats"]) == 0
        out = capsys.readouterr().out
        assert "ingested 0 events" in out
        assert "reduction ratio" not in out

    def test_segments_and_compact_commands(self, tmp_path, capsys):
        from repro.audit.logfmt import format_log
        from repro.cli import main
        log = tmp_path / "audit.log"
        log.write_text(format_log(_events(sessions=12, seed=3)),
                       encoding="utf-8")
        snap = tmp_path / "snap"
        assert main(["snapshot", "--log", str(log), "--out", str(snap),
                     "--layout", "segmented", "--segment-events",
                     "100"]) == 0
        assert main(["segments", "--snapshot", str(snap)]) == 0
        out = capsys.readouterr().out
        assert "layout: segmented" in out
        assert "seg-000001" in out
        out2 = tmp_path / "snap2"
        assert main(["compact", "--snapshot", str(snap), "--out",
                     str(out2), "--min-events", "100000"]) == 0
        assert main(["segments", "--snapshot", str(out2)]) == 0
        assert "sealed segments: 1" in capsys.readouterr().out

    def test_query_snapshot_with_workers(self, tmp_path, capsys):
        from repro.audit.logfmt import format_log
        from repro.cli import main
        log = tmp_path / "audit.log"
        log.write_text(format_log(_events(sessions=12, seed=3)),
                       encoding="utf-8")
        snap = tmp_path / "snap"
        main(["snapshot", "--log", str(log), "--out", str(snap),
              "--layout", "segmented", "--segment-events", "100"])
        capsys.readouterr()
        code = main(["query", "--snapshot", str(snap), "--workers", "2",
                     "--explain", "--tbql", QUERY])
        assert code == 0
        assert "scanned" in capsys.readouterr().out
