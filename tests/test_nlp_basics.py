"""Unit/property tests for tokenization, sentences, POS, lemmas, vectors."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nlp.lemmatizer import lemmatize
from repro.nlp.pos import POSTagger
from repro.nlp.sentences import split_blocks, split_sentences
from repro.nlp.tokenizer import detokenize, tokenize, tokenize_whitespace
from repro.nlp.vectors import character_overlap, cosine_similarity, embed


class TestGeneralTokenizer:
    def test_splits_punctuation(self):
        texts = [token.text for token in tokenize("read /etc/passwd now.")]
        assert "/" in texts and "etc" in texts and "passwd" in texts

    def test_shreds_ip_addresses(self):
        texts = [token.text for token in tokenize("connect to 192.168.1.1")]
        assert "192.168.1.1" not in texts
        assert len(texts) > 3

    def test_offsets_are_correct(self):
        text = "read file"
        for token in tokenize(text):
            assert text[token.start:token.end] == token.text

    def test_is_punct_flag(self):
        tokens = tokenize("a, b")
        assert [t.is_punct for t in tokens] == [False, True, False]


class TestWhitespaceTokenizer:
    def test_keeps_paths_intact(self):
        texts = [t.text for t in tokenize_whitespace("read /etc/passwd now")]
        assert "/etc/passwd" in texts

    def test_keeps_ips_intact(self):
        texts = [t.text for t in
                 tokenize_whitespace("connect to 192.168.29.128.")]
        assert "192.168.29.128" in texts
        assert "." in texts            # trailing period split off

    def test_splits_trailing_punctuation(self):
        texts = [t.text for t in tokenize_whitespace("something, done.")]
        assert texts == ["something", ",", "done", "."]

    def test_splits_leading_quote(self):
        texts = [t.text for t in tokenize_whitespace('"quoted" word')]
        assert texts[0] == '"'

    def test_detokenize_readable(self):
        tokens = tokenize_whitespace("read /etc/passwd.")
        assert detokenize(tokens) == "read /etc/passwd."

    @given(st.text(alphabet=st.characters(whitelist_categories=("Ll", "Lu"),
                                          whitelist_characters=" ./-_"),
                   max_size=80))
    @settings(max_examples=80, deadline=None)
    def test_tokens_cover_all_non_space_text(self, text):
        tokens = tokenize_whitespace(text)
        reconstructed = "".join(token.text for token in tokens)
        assert reconstructed == text.replace(" ", "")

    @given(st.text(max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_never_crashes_and_indices_sequential(self, text):
        tokens = tokenize_whitespace(text)
        assert [t.index for t in tokens] == list(range(len(tokens)))


class TestSentenceSegmentation:
    def test_splits_on_period(self):
        sentences = split_sentences("First sentence. Second sentence.")
        assert len(sentences) == 2
        assert sentences[0].text == "First sentence."

    def test_keeps_abbreviations(self):
        sentences = split_sentences("Use tools, e.g. tar and gzip. Done.")
        assert len(sentences) == 2

    def test_keeps_decimal_numbers(self):
        sentences = split_sentences("It took 3.5 seconds. Then it stopped.")
        assert len(sentences) == 2

    def test_question_and_exclamation(self):
        sentences = split_sentences("Was it malicious? Yes! Indeed.")
        assert len(sentences) == 3

    def test_offsets_match_source(self):
        text = "Alpha beta. Gamma delta."
        for sentence in split_sentences(text):
            assert text[sentence.start:sentence.end] == sentence.text

    def test_no_trailing_period(self):
        assert len(split_sentences("no trailing period here")) == 1

    def test_split_blocks_on_blank_lines(self):
        blocks = split_blocks("para one line one\nline two\n\npara two")
        assert blocks == ["para one line one line two", "para two"]

    def test_split_blocks_collapses_whitespace(self):
        assert split_blocks("a   b\n\n\n  c ") == ["a b", "c"]


class TestPOSTagger:
    def setup_method(self):
        self.tagger = POSTagger()

    def _tags(self, sentence):
        tokens = tokenize_whitespace(sentence)
        return dict(zip([t.text for t in tokens], self.tagger.tag(tokens)))

    def test_basic_sentence(self):
        tags = self._tags("the attacker used something to read credentials")
        assert tags["the"] == "DET"
        assert tags["attacker"] == "NOUN"
        assert tags["used"] == "VERB"
        assert tags["something"] == "NOUN"
        assert tags["read"] == "VERB"

    def test_protection_word_is_nounish(self):
        tags = self._tags("something read from something")
        assert tags["something"] == "NOUN"

    def test_participle_before_noun_is_adjective(self):
        tags = self._tags("it wrote the gathered information")
        assert tags["gathered"] == "ADJ"
        tags = self._tags("he leaked the stolen data")
        assert tags["stolen"] == "ADJ"

    def test_path_like_token_is_propn(self):
        tags = self._tags("then /usr/bin/curl connected")
        assert tags["/usr/bin/curl"] == "PROPN"

    def test_pronoun_and_preposition(self):
        tags = self._tags("it wrote data to a file")
        assert tags["it"] == "PRON"
        assert tags["to"] == "ADP"

    def test_infinitive_to_is_particle(self):
        tags = self._tags("the attacker used something to read data")
        assert tags["to"] == "PART"

    def test_numbers(self):
        tags = self._tags("stage 2 malware")
        assert tags["2"] == "NUM"

    def test_punctuation(self):
        tags = self._tags("done .")
        assert tags["."] == "PUNCT"


class TestLemmatizer:
    def test_irregular_verbs(self):
        assert lemmatize("wrote") == "write"
        assert lemmatize("sent") == "send"
        assert lemmatize("stole") == "steal"
        assert lemmatize("ran") == "run"

    def test_regular_past_tense(self):
        assert lemmatize("downloaded") == "download"
        assert lemmatize("connected") == "connect"
        assert lemmatize("used") == "use"
        assert lemmatize("executed") == "execute"
        assert lemmatize("leveraged") == "leverage"

    def test_gerunds(self):
        assert lemmatize("reading") == "read"
        assert lemmatize("running") == "run"

    def test_plural_nouns(self):
        assert lemmatize("credentials") == "credential"
        assert lemmatize("processes") == "processe" or \
            lemmatize("processes") == "process"

    def test_short_words_untouched(self):
        assert lemmatize("is") == "be"
        assert lemmatize("cat") == "cat"

    def test_already_base_form(self):
        assert lemmatize("read") == "read"
        assert lemmatize("connect") == "connect"

    @given(st.text(alphabet="abcdefghijklmnopqrstuvwxyz", min_size=1,
                   max_size=15))
    @settings(max_examples=100, deadline=None)
    def test_always_returns_lowercase_nonempty(self, word):
        lemma = lemmatize(word)
        assert lemma
        assert lemma == lemma.lower()


class TestVectors:
    def test_identical_strings_similarity_one(self):
        assert cosine_similarity("/tmp/upload.tar", "/tmp/upload.tar") == \
            1.0

    def test_similar_strings_high_similarity(self):
        assert cosine_similarity("upload.tar", "/tmp/upload.tar") > 0.6

    def test_different_strings_low_similarity(self):
        assert cosine_similarity("/etc/passwd", "192.168.29.128") < 0.5

    def test_empty_string_zero_vector(self):
        assert not embed("").any()

    def test_character_overlap_containment(self):
        assert character_overlap("upload.tar", "/tmp/upload.tar") > 0.6
        assert character_overlap("", "abc") == 0.0

    def test_character_overlap_symmetric(self):
        assert character_overlap("abcd", "bcde") == \
            character_overlap("bcde", "abcd")

    @given(st.text(max_size=30), st.text(max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_similarity_bounded(self, left, right):
        value = cosine_similarity(left, right)
        assert -1.0001 <= value <= 1.0001

    @given(st.text(min_size=1, max_size=30))
    @settings(max_examples=50, deadline=None)
    def test_self_similarity_is_one(self, text):
        if embed(text).any():
            assert cosine_similarity(text, text) == pytest.approx(1.0)
