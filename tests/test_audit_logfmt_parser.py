"""Unit tests for the auditd-style log format and the log parser."""

import pytest

from repro.audit.entities import (FileEntity, NetworkEntity, Operation,
                                  ProcessEntity, SystemEvent)
from repro.audit.logfmt import (format_log, format_record, parse_fields,
                                parse_record, split_cmdline)
from repro.audit.parser import AuditLogParser, parse_audit_log, \
    summarize_events
from repro.errors import AuditError


def _file_event(path="/etc/passwd", operation=Operation.READ):
    subject = ProcessEntity(exename="/bin/tar", pid=101,
                            cmdline="tar cf /tmp/x /etc/passwd")
    return SystemEvent(subject=subject, operation=operation,
                       obj=FileEntity(path=path, name=path),
                       start_time=100.0, end_time=100.5, data_amount=4096)


def _network_event():
    subject = ProcessEntity(exename="/usr/bin/curl", pid=102)
    obj = NetworkEntity(srcip="10.0.0.5", srcport=40000,
                        dstip="192.168.29.128", dstport=443)
    return SystemEvent(subject=subject, operation=Operation.CONNECT, obj=obj,
                       start_time=200.0, end_time=200.1)


def _process_event():
    subject = ProcessEntity(exename="/bin/bash", pid=103)
    obj = ProcessEntity(exename="/usr/bin/python3", pid=104)
    return SystemEvent(subject=subject, operation=Operation.START, obj=obj,
                       start_time=300.0, end_time=300.0)


class TestRecordRoundTrip:
    def test_file_event_roundtrip(self):
        original = _file_event()
        parsed = parse_record(format_record(original))
        assert parsed.operation is Operation.READ
        assert parsed.subject.exename == "/bin/tar"
        assert parsed.subject.pid == 101
        assert parsed.obj.path == "/etc/passwd"
        assert parsed.data_amount == 4096
        assert parsed.start_time == pytest.approx(100.0)

    def test_network_event_roundtrip(self):
        parsed = parse_record(format_record(_network_event()))
        assert parsed.operation is Operation.CONNECT
        assert parsed.obj.dstip == "192.168.29.128"
        assert parsed.obj.dstport == 443
        assert parsed.obj.srcport == 40000

    def test_process_event_roundtrip(self):
        parsed = parse_record(format_record(_process_event()))
        assert parsed.operation is Operation.START
        assert parsed.obj.exename == "/usr/bin/python3"
        assert parsed.obj.pid == 104

    def test_cmdline_with_spaces_is_quoted(self):
        record = format_record(_file_event())
        fields = parse_fields(record)
        assert fields["cmdline"] == "tar cf /tmp/x /etc/passwd"

    def test_path_with_spaces_roundtrip(self):
        event = _file_event(path="/home/alice/My Documents/report.txt")
        parsed = parse_record(format_record(event))
        assert parsed.obj.path == "/home/alice/My Documents/report.txt"

    def test_format_log_one_line_per_event(self):
        log = format_log([_file_event(), _network_event()])
        assert len(log.strip().splitlines()) == 2


class TestMalformedRecords:
    def test_empty_record_raises(self):
        with pytest.raises(AuditError):
            parse_fields("   ")

    def test_unknown_syscall_raises(self):
        with pytest.raises(AuditError):
            parse_record("type=SYSCALL ts=1 te=1 syscall=frobnicate pid=1 "
                         "exe=/bin/x obj=file path=/tmp/a")

    def test_missing_path_raises(self):
        with pytest.raises(AuditError):
            parse_record("type=SYSCALL ts=1 te=1 syscall=read pid=1 "
                         "exe=/bin/x obj=file")

    def test_missing_dstip_raises(self):
        with pytest.raises(AuditError):
            parse_record("type=SYSCALL ts=1 te=1 syscall=connect pid=1 "
                         "exe=/bin/x obj=ip")

    def test_unsupported_record_type_raises(self):
        with pytest.raises(AuditError):
            parse_record("type=LOGIN ts=1 pid=1")

    def test_bad_number_raises(self):
        with pytest.raises(AuditError):
            parse_record("type=SYSCALL ts=abc te=1 syscall=read pid=1 "
                         "exe=/bin/x obj=file path=/tmp/a")


class TestAuditLogParser:
    def test_parse_skips_comments_and_blank_lines(self):
        log = "\n".join(["# header comment", "",
                         format_record(_file_event())])
        parser = AuditLogParser()
        events = parser.parse_text(log)
        assert len(events) == 1
        assert parser.last_report.skipped_lines == 2

    def test_parse_counts_malformed_lines(self):
        log = "\n".join([format_record(_file_event()), "garbage line here"])
        parser = AuditLogParser()
        events = parser.parse_text(log)
        assert len(events) == 1
        assert parser.last_report.malformed_lines == 1

    def test_strict_mode_raises_on_malformed(self):
        parser = AuditLogParser(strict=True)
        with pytest.raises(AuditError):
            parser.parse_text("garbage line here")

    def test_events_sorted_by_start_time(self):
        log = format_log([_network_event(), _file_event()])
        events = parse_audit_log(log)
        assert events[0].start_time <= events[1].start_time

    def test_parse_file(self, tmp_path):
        path = tmp_path / "audit.log"
        path.write_text(format_log([_file_event(), _network_event()]))
        events = AuditLogParser().parse_file(path)
        assert len(events) == 2

    def test_summarize_events(self):
        events = parse_audit_log(format_log(
            [_file_event(), _network_event(), _process_event()]))
        summary = summarize_events(events)
        assert summary["num_events"] == 3
        assert summary["num_entities"] == 6
        assert summary["events_by_category"]["file_event"] == 1
        assert summary["time_span"][0] <= summary["time_span"][1]

    def test_summarize_empty(self):
        assert summarize_events([])["num_events"] == 0


class TestCmdlineSplit:
    def test_simple_split(self):
        assert split_cmdline("tar cf /tmp/x /etc/passwd") == \
            ["tar", "cf", "/tmp/x", "/etc/passwd"]

    def test_unbalanced_quote_falls_back(self):
        assert split_cmdline('echo "unterminated') == ["echo",
                                                       '"unterminated']


class TestCollectorLogRoundTrip:
    def test_collector_log_parses_back(self, data_leak_events):
        from repro.audit.logfmt import format_log as fmt
        log_text = fmt(data_leak_events)
        parsed = parse_audit_log(log_text)
        assert len(parsed) == len(data_leak_events)
        operations = {event.operation for event in parsed}
        assert Operation.CONNECT in operations
        assert Operation.READ in operations
