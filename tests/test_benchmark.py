"""Tests for the evaluation benchmark: metrics, cases, and drivers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchmark import (ALL_CASES, CaseBuilder, PRF, aggregate,
                             build_case_queries, build_case_store, case_ids,
                             format_table, get_case, run_conciseness,
                             run_extraction_accuracy, run_hunting_accuracy,
                             score_hunting, score_ioc_entities,
                             score_ioc_relations, score_sets, step_signature)
from repro.errors import BenchmarkError
from repro.hunting import ThreatRaptor


class TestMetrics:
    def test_prf_basic(self):
        score = PRF(true_positives=8, false_positives=2, false_negatives=2)
        assert score.precision == 0.8
        assert score.recall == 0.8
        assert score.f1 == pytest.approx(0.8)

    def test_prf_degenerate_cases(self):
        assert PRF(0, 0, 0).precision == 1.0
        assert PRF(0, 0, 0).recall == 1.0
        assert PRF(0, 0, 5).precision == 0.0
        assert PRF(0, 5, 0).f1 == 0.0

    def test_prf_addition_and_aggregate(self):
        total = aggregate([PRF(1, 0, 1), PRF(2, 1, 0)])
        assert (total.true_positives, total.false_positives,
                total.false_negatives) == (3, 1, 1)

    def test_score_sets(self):
        score = score_sets({"a", "b"}, {"b", "c"})
        assert (score.true_positives, score.false_positives,
                score.false_negatives) == (1, 1, 1)

    def test_ioc_entity_scoring_tolerates_path_prefix(self):
        score = score_ioc_entities(["upload.tar", "/etc/passwd"],
                                   ["/tmp/upload.tar", "/etc/passwd"])
        assert score.recall == 1.0
        assert score.precision == 1.0

    def test_ioc_entity_scoring_case_insensitive(self):
        score = score_ioc_entities(["PAYLOAD.EXE"], ["payload.exe"])
        assert score.f1 == 1.0

    def test_relation_scoring_normalizes(self):
        score = score_ioc_relations([("/bin/TAR", "Read", "/etc/passwd")],
                                    [("/bin/tar", "read", "/etc/passwd")])
        assert score.f1 == 1.0

    def test_hunting_scoring(self):
        found = {("/bin/tar", "read", "/etc/passwd")}
        truth = {("/bin/tar", "read", "/etc/passwd"),
                 ("/bin/tar", "write", "/tmp/upload.tar")}
        score = score_hunting(found, truth)
        assert score.precision == 1.0
        assert score.recall == 0.5

    @given(st.sets(st.text(max_size=6), max_size=10),
           st.sets(st.text(max_size=6), max_size=10))
    @settings(max_examples=60, deadline=None)
    def test_score_sets_counts_consistent(self, predicted, expected):
        score = score_sets(predicted, expected)
        assert score.true_positives + score.false_positives == len(predicted)
        assert score.true_positives + score.false_negatives == len(expected)
        assert 0.0 <= score.precision <= 1.0
        assert 0.0 <= score.recall <= 1.0


class TestCases:
    def test_benchmark_has_18_cases(self):
        assert len(ALL_CASES) == 18
        assert len(case_ids()) == 18
        assert case_ids()[0] == "tc_clearscope_1"
        assert case_ids()[-1] == "vpnfilter"

    def test_get_case_and_unknown(self):
        assert get_case("data_leak").case_id == "data_leak"
        with pytest.raises(BenchmarkError):
            get_case("not_a_case")

    def test_every_case_is_well_formed(self):
        for case in ALL_CASES:
            assert case.description.strip()
            assert case.steps, case.case_id
            assert case.ground_truth_iocs
            assert case.ground_truth_relations
            # every expected miss must be a real step
            assert set(case.expected_misses) <= set(case.steps)
            # relations reference labeled IOCs
            iocs = {ioc.lower() for ioc in case.ground_truth_iocs}
            for subject, _verb, obj in case.ground_truth_relations:
                assert subject.lower() in iocs
                assert obj.lower() in iocs

    def test_step_signature_network_operations(self):
        assert step_signature(("proc:/usr/bin/wget", "download",
                               "ip:1.2.3.4")) == \
            ("/usr/bin/wget", "receive", "1.2.3.4")
        assert step_signature(("proc:/bin/nc", "write", "ip:1.2.3.4")) == \
            ("/bin/nc", "send", "1.2.3.4")

    def test_builder_materializes_attack_and_noise(self, clearscope_built):
        built = clearscope_built
        assert built.malicious_event_count > 0
        assert built.benign_event_count > 0
        assert built.attack_signatures == \
            built.case.hunting_ground_truth()

    def test_builder_rejects_bad_step(self):
        from repro.benchmark.case import AttackCase
        bad = AttackCase(case_id="bad", name="bad", description="x",
                         steps=(("file:/tmp/x", "read", "file:/tmp/y"),),
                         ground_truth_iocs=("x",),
                         ground_truth_relations=(("a", "read", "b"),))
        with pytest.raises(BenchmarkError):
            CaseBuilder().build(bad, benign_sessions=0)

    def test_build_case_store_loads_both_backends(self):
        store, ground_truth = build_case_store(get_case("tc_clearscope_3"),
                                               benign_sessions=3)
        stats = store.statistics()
        assert stats["relational_events"] == stats["graph_edges"] > 0
        assert ground_truth
        store.close()


class TestQueries:
    def test_four_variants_generated(self):
        queries = build_case_queries(get_case("tc_clearscope_2"))
        assert queries.pattern_count == 2
        assert queries.tbql and queries.sql and queries.cypher
        assert "->[" in queries.tbql_path
        assert "SELECT" in queries.sql
        assert "MATCH" in queries.cypher
        assert "?" not in queries.sql          # params inlined for counting

    def test_variants_return_same_answer(self):
        case = get_case("tc_clearscope_2")
        store, _ = build_case_store(case, benign_sessions=5)
        queries = build_case_queries(case)
        raptor = ThreatRaptor(store=store)
        tbql_rows = raptor.execute_tbql(queries.tbql).rows
        sql_rows = store.execute_sql(queries.sql)
        cypher_rows = store.execute_cypher(queries.cypher)
        assert len(tbql_rows) == len(sql_rows) == len(cypher_rows) == 1
        store.close()


class TestDrivers:
    def test_extraction_accuracy_shape(self):
        cases = [get_case("data_leak"), get_case("tc_theia_1")]
        rows = run_extraction_accuracy(cases)
        assert len(rows) == 6
        ours = rows[0]
        baseline = rows[2]
        assert ours["approach"] == "ThreatRaptor"
        assert ours["entity_f1"] > 0.9
        assert ours["relation_f1"] > 0.9
        assert baseline["entity_f1"] < 0.5
        assert baseline["relation_f1"] < 0.2

    def test_hunting_accuracy_shape(self):
        cases = [get_case("tc_clearscope_2"), get_case("tc_trace_4")]
        rows = run_hunting_accuracy(cases, benign_sessions=5)
        by_case = {row["case"]: row for row in rows}
        assert by_case["tc_clearscope_2"]["precision"] == 1.0
        assert by_case["tc_clearscope_2"]["recall"] == 1.0
        assert by_case["tc_trace_4"]["fn"] >= 1
        assert by_case["Total"]["tp"] >= 4

    def test_conciseness_driver(self):
        rows = run_conciseness([get_case("tc_clearscope_2")])
        case_row = rows[0]
        assert case_row["sql_chars"] > case_row["tbql_chars"]
        assert case_row["cypher_chars"] > case_row["tbql_chars"]
        assert rows[-1]["case"] == "Total"

    def test_format_table(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.123}])
        assert "a" in text.splitlines()[0]
        assert len(text.splitlines()) == 4
