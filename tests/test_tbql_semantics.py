"""Unit tests for TBQL semantic resolution (sugar expansion, validation)."""

import pytest

from repro.errors import TBQLSemanticError
from repro.tbql.ast import AttributeComparison
from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import (evaluate_operation_expr, parse_datetime,
                                  resolve_query, resolve_window)


def resolve(text, now=None):
    return resolve_query(parse_tbql(text), now=now)


class TestDefaultAttributes:
    def test_bare_value_uses_default_attribute(self):
        resolved = resolve('proc p["%/bin/tar%"] read file f["%/etc/p%"] '
                           'return p')
        subject_filter = resolved.patterns[0].subject.attr_filter
        object_filter = resolved.patterns[0].obj.attr_filter
        assert isinstance(subject_filter, AttributeComparison)
        assert subject_filter.attribute == "exename"
        assert object_filter.attribute == "name"

    def test_network_default_is_dstip(self):
        resolved = resolve('proc p connect ip i["1.2.3.4"] return i')
        assert resolved.patterns[0].obj.attr_filter.attribute == "dstip"

    def test_return_items_get_default_attributes(self):
        resolved = resolve('proc p["%x%"] read file f return p, f')
        assert resolved.return_items == [("p", "exename"), ("f", "name")]

    def test_explicit_return_attribute_kept(self):
        resolved = resolve('proc p read file f return p.pid')
        assert resolved.return_items == [("p", "pid")]

    def test_missing_return_defaults_to_all_entities(self):
        resolved = resolve('proc p read file f')
        assert ("p", "exename") in resolved.return_items
        assert ("f", "name") in resolved.return_items


class TestPatternResolution:
    def test_pattern_ids_auto_assigned(self):
        resolved = resolve("proc p read file f proc p write file g")
        assert [p.pattern_id for p in resolved.patterns] == ["evt1", "evt2"]

    def test_explicit_ids_kept_and_not_reused(self):
        resolved = resolve("proc p read file f as evt1 proc p write file g")
        ids = [p.pattern_id for p in resolved.patterns]
        assert ids[0] == "evt1" and ids[1] != "evt1"

    def test_operation_sets(self):
        resolved = resolve("proc p read || write file f return p")
        assert resolved.patterns[0].operations == {"read", "write"}

    def test_operation_negation_set(self):
        resolved = resolve("proc p !read file f return p")
        operations = resolved.patterns[0].operations
        assert "read" not in operations and "write" in operations

    def test_any_operation_for_bare_path(self):
        resolved = resolve("proc p ~> file f return p")
        assert resolved.patterns[0].operations is None
        assert resolved.patterns[0].is_path

    def test_path_lengths_resolved(self):
        resolved = resolve("proc p ~>(2~4)[read] file f return p")
        pattern = resolved.patterns[0]
        assert (pattern.min_length, pattern.max_length) == (2, 4)

    def test_constraint_count(self):
        resolved = resolve('proc p["%tar%"] read file f["%passwd%"] '
                           'as e1[data_amount > 10] return p')
        assert resolved.patterns[0].constraint_count == 4

    def test_subject_must_be_process(self):
        with pytest.raises(TBQLSemanticError):
            resolve("file f read file g return f")

    def test_entity_type_conflict_rejected(self):
        with pytest.raises(TBQLSemanticError):
            resolve("proc x read file f proc p write file x return p")

    def test_unknown_attribute_rejected(self):
        with pytest.raises(TBQLSemanticError):
            resolve('proc p[color = "red"] read file f return p')

    def test_unknown_return_entity_rejected(self):
        with pytest.raises(TBQLSemanticError):
            resolve("proc p read file f return q")

    def test_unknown_pattern_in_with_rejected(self):
        with pytest.raises(TBQLSemanticError):
            resolve("proc p read file f as e1 with e1 before e9 return p")

    def test_shared_entities_map(self):
        resolved = resolve("proc p read file f as e1 "
                           "proc p write file g as e2 return p")
        sharing = resolved.shared_entities()
        assert sharing["p"] == ["e1", "e2"]

    def test_pattern_by_id_unknown_raises(self):
        resolved = resolve("proc p read file f as e1 return p")
        with pytest.raises(TBQLSemanticError):
            resolved.pattern_by_id("nope")


class TestWindowsAndDatetimes:
    def test_parse_datetime_formats(self):
        assert parse_datetime("1523450000") == 1523450000.0
        assert parse_datetime("2018-04-10") < parse_datetime(
            "2018-04-11 12:30")
        with pytest.raises(TBQLSemanticError):
            parse_datetime("not a date")

    def test_range_window(self):
        resolved = resolve('proc p read file f as e1 from "2018-04-10" to '
                           '"2018-04-12" return p')
        earliest, latest = resolved.patterns[0].window
        assert earliest < latest

    def test_last_window_uses_now(self):
        resolved = resolve("last 1 hours proc p read file f return p",
                           now=10_000.0)
        earliest, latest = resolved.global_window
        assert latest == 10_000.0
        assert earliest == 10_000.0 - 3600.0

    def test_before_after_windows(self):
        from repro.tbql.ast import TimeWindow
        before = resolve_window(TimeWindow(kind="before", start="100"))
        after = resolve_window(TimeWindow(kind="after", start="100"))
        assert before == (None, 100.0)
        assert after == (100.0, None)

    def test_evaluate_operation_expr_none(self):
        assert evaluate_operation_expr(None) is None
