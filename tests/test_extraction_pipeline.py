"""Tests for the threat behavior extraction pipeline (Algorithm 1)."""

from repro.extraction import (ClauseOpenIE, PatternOpenIE, PipelineConfig,
                              ThreatBehaviorExtractor,
                              extract_threat_behaviors)
from repro.extraction.annotate import (RELATION_VERB_KEYWORDS, annotate_tree,
                                       simplify_tree)
from repro.extraction.behavior_graph import build_behavior_graph
from repro.extraction.coref import resolve_coreferences
from repro.extraction.ioc import IOCType
from repro.extraction.merge import MergedIOC, scan_and_merge_iocs
from repro.extraction.protection import protect_iocs, restore_tree
from repro.extraction.relations import IOCRelation, extract_relations
from repro.nlp.depparse import RuleDependencyParser

from .conftest import DATA_LEAK_EDGES, DATA_LEAK_TEXT


def _annotated_tree(sentence):
    protected = protect_iocs(sentence)
    tree = RuleDependencyParser().parse(protected.text)
    restore_tree(tree, protected, 0)
    return annotate_tree(tree)


class TestAnnotation:
    def test_relation_verbs_annotated(self):
        tree = _annotated_tree("/bin/tar read /etc/passwd.")
        verbs = [n.annotations.get("relation_verb") for n in tree.nodes
                 if "relation_verb" in n.annotations]
        assert verbs == ["read"]

    def test_ioc_nodes_annotated(self):
        tree = _annotated_tree("/bin/tar read /etc/passwd.")
        assert sum("is_ioc" in n.annotations for n in tree.nodes) == 2

    def test_pronouns_annotated(self):
        tree = _annotated_tree("It wrote data to /tmp/upload.tar.")
        assert any("coref_pronoun" in n.annotations for n in tree.nodes)

    def test_keyword_list_covers_core_operations(self):
        for verb in ("read", "write", "execute", "connect", "download",
                     "send", "delete"):
            assert verb in RELATION_VERB_KEYWORDS

    def test_simplify_drops_irrelevant_tree(self):
        tree = _annotated_tree("The weather was pleasant that day.")
        assert simplify_tree(tree) is None

    def test_simplify_keeps_relevant_tree(self):
        tree = _annotated_tree("/bin/tar read /etc/passwd.")
        simplified = simplify_tree(tree)
        assert simplified is not None
        assert sum("is_ioc" in n.annotations for n in simplified.nodes) == 2

    def test_simplify_preserves_extraction_outcome(self):
        sentence = ("As a first step, the attacker used /bin/tar to read "
                    "user credentials from /etc/passwd.")
        full = extract_relations(_annotated_tree(sentence))
        simplified_tree = simplify_tree(_annotated_tree(sentence))
        pruned = extract_relations(simplified_tree)
        assert {(r.subject, r.verb, r.obj) for r in full} == \
            {(r.subject, r.verb, r.obj) for r in pruned}


class TestRelationExtraction:
    def _triples(self, sentence):
        return [(r.subject, r.verb, r.obj)
                for r in extract_relations(_annotated_tree(sentence))]

    def test_simple_svo(self):
        assert self._triples("/bin/bzip2 read /tmp/upload.tar.") == \
            [("/bin/bzip2", "read", "/tmp/upload.tar")]

    def test_instrument_pattern(self):
        triples = self._triples("the attacker used /bin/tar to read user "
                                "credentials from /etc/passwd.")
        assert ("/bin/tar", "read", "/etc/passwd") in triples

    def test_coordinated_verbs_share_subject(self):
        triples = self._triples("/bin/bzip2 read from /tmp/upload.tar and "
                                "wrote to /tmp/upload.tar.bz2.")
        assert ("/bin/bzip2", "read", "/tmp/upload.tar") in triples
        assert ("/bin/bzip2", "write", "/tmp/upload.tar.bz2") in triples

    def test_download_produces_file_and_ip_relations(self):
        triples = self._triples("/usr/bin/wget downloaded the cracker "
                                "/tmp/john from 192.168.29.128.")
        assert ("/usr/bin/wget", "download", "/tmp/john") in triples
        assert ("/usr/bin/wget", "download", "192.168.29.128") in triples

    def test_execute_object_extracted(self):
        assert self._triples("/bin/bash executed /tmp/payload.sh.") == \
            [("/bin/bash", "execute", "/tmp/payload.sh")]

    def test_linking_verb_object_not_event_object(self):
        triples = self._triples("the attacker used /bin/tar to scan the "
                                "host.")
        assert all(obj != "/bin/tar" for _, _, obj in triples)

    def test_connect_relation(self):
        assert ("/usr/bin/curl", "connect", "192.168.29.128") in \
            self._triples("the attacker used /usr/bin/curl to connect to "
                          "192.168.29.128.")

    def test_passive_voice(self):
        triples = self._triples("/tmp/drakon was downloaded by "
                                "/usr/bin/firefox.")
        assert ("/usr/bin/firefox", "download", "/tmp/drakon") in triples

    def test_no_relation_between_two_objects(self):
        triples = self._triples("/bin/bzip2 read from /tmp/upload.tar and "
                                "wrote to /tmp/upload.tar.bz2.")
        assert ("/tmp/upload.tar", "write", "/tmp/upload.tar.bz2") not in \
            triples

    def test_no_relation_without_candidate_verb(self):
        assert self._triples("/bin/tar and /etc/passwd were interesting "
                             "artifacts.") == []

    def test_relations_deduplicated(self):
        relations = extract_relations(_annotated_tree(
            "/bin/tar read /etc/passwd."))
        keys = [(r.subject, r.verb, r.obj) for r in relations]
        assert len(keys) == len(set(keys))


class TestCoreference:
    def _trees(self, text):
        protected = protect_iocs(text)
        parser = RuleDependencyParser()
        from repro.nlp.sentences import split_sentences
        trees = []
        consumed = 0
        for sentence in split_sentences(protected.text):
            tree = parser.parse(sentence.text)
            consumed = restore_tree(tree, protected, consumed)
            trees.append(annotate_tree(tree))
        return trees

    def test_pronoun_resolves_to_recent_actor(self):
        trees = self._trees("the attacker used /bin/tar to read "
                            "/etc/passwd. It wrote the data to "
                            "/tmp/upload.tar.")
        resolved = resolve_coreferences(trees)
        assert resolved == 1
        pronoun = next(n for n in trees[1].nodes
                       if "coref_pronoun" in n.annotations)
        assert pronoun.annotations["coref_ioc"] == "/bin/tar"

    def test_unresolvable_pronoun_left_alone(self):
        trees = self._trees("It wrote the data to /tmp/upload.tar.")
        resolve_coreferences(trees)
        pronoun = next(n for n in trees[0].nodes
                       if "coref_pronoun" in n.annotations)
        assert "coref_ioc" not in pronoun.annotations

    def test_nominal_with_own_ioc_not_resolved(self):
        trees = self._trees("the attacker used /bin/tar to read "
                            "/etc/passwd. the process /usr/bin/gpg wrote "
                            "data to /tmp/upload.")
        resolve_coreferences(trees)
        for node in trees[1].nodes:
            if node.text == "process":
                assert "coref_ioc" not in node.annotations


class TestMerge:
    def test_mentions_of_same_path_merge(self):
        trees_block1 = [_annotated_tree("/bin/tar wrote /tmp/upload.tar.")]
        trees_block2 = [_annotated_tree("/bin/bzip2 read upload.tar.")]
        merged = scan_and_merge_iocs([trees_block1, trees_block2])
        canonical = {m.canonical for m in merged}
        assert "/tmp/upload.tar" in canonical
        # the bare "upload.tar" mention merged into the full path
        target = next(m for m in merged if m.canonical == "/tmp/upload.tar")
        assert "upload.tar" in target.mentions

    def test_distinct_extensions_not_merged(self):
        trees = [[_annotated_tree("/bin/bzip2 read /tmp/upload.tar and "
                                  "wrote /tmp/upload.tar.bz2.")]]
        merged = scan_and_merge_iocs(trees)
        assert {m.canonical for m in merged} >= {"/tmp/upload.tar",
                                                 "/tmp/upload.tar.bz2"}

    def test_merged_ioc_covers(self):
        merged = MergedIOC(canonical="/tmp/a", ioc_type=IOCType.FILEPATH,
                           mentions=["/tmp/a", "a"])
        assert merged.covers("a")
        assert not merged.covers("b")


class TestBehaviorGraph:
    def test_sequence_numbers_follow_text_order(self, data_leak_extraction):
        edges = [(e.source, e.relation, e.target)
                 for e in data_leak_extraction.graph.ordered_edges()]
        assert edges == DATA_LEAK_EDGES
        sequences = [e.sequence for e in
                     data_leak_extraction.graph.ordered_edges()]
        assert sequences == list(range(1, len(edges) + 1))

    def test_nodes_cover_all_iocs(self, data_leak_extraction):
        names = {node.ioc for node in data_leak_extraction.graph.nodes}
        assert "/bin/tar" in names and "192.168.29.128" in names

    def test_networkx_export(self, data_leak_extraction):
        graph = data_leak_extraction.graph.to_networkx()
        assert graph.number_of_nodes() == len(
            data_leak_extraction.graph.nodes)
        assert graph.number_of_edges() == len(
            data_leak_extraction.graph.edges)

    def test_successors_predecessors(self, data_leak_extraction):
        graph = data_leak_extraction.graph
        assert {e.target for e in graph.successors("/bin/tar")} == \
            {"/etc/passwd", "/tmp/upload.tar"}
        assert {e.source for e in graph.predecessors("/tmp/upload.tar")} == \
            {"/bin/tar", "/bin/bzip2"}

    def test_self_loop_only_for_execution_verbs(self):
        relations = [IOCRelation("a.exe", "write", None, "a.exe", None, 0),
                     IOCRelation("b.exe", "run", None, "b.exe", None, 1)]
        iocs = [MergedIOC("a.exe", IOCType.FILENAME, ["a.exe"]),
                MergedIOC("b.exe", IOCType.FILENAME, ["b.exe"])]
        relations = [IOCRelation(r.subject, r.verb, r.obj, r.obj, None,
                                 r.verb_offset)
                     for r in relations]
        graph = build_behavior_graph(iocs, [
            IOCRelation("a.exe", None, "write", "a.exe", None, 0),
            IOCRelation("b.exe", None, "run", "b.exe", None, 1)])
        edge_relations = {e.relation for e in graph.edges}
        assert edge_relations == {"run"}

    def test_summary_text(self, data_leak_extraction):
        summary = data_leak_extraction.graph.summary()
        assert "8 relations" in summary


class TestEndToEndPipeline:
    def test_figure2_graph_reproduced(self, data_leak_extraction):
        assert [(e.source, e.relation, e.target)
                for e in data_leak_extraction.graph.ordered_edges()] == \
            DATA_LEAK_EDGES

    def test_iocs_extracted_exactly(self, data_leak_extraction):
        assert set(data_leak_extraction.ioc_values) == {
            "/bin/tar", "/etc/passwd", "/tmp/upload.tar", "/bin/bzip2",
            "/tmp/upload.tar.bz2", "/usr/bin/gpg", "/tmp/upload",
            "/usr/bin/curl", "192.168.29.128"}

    def test_timings_recorded(self, data_leak_extraction):
        assert data_leak_extraction.extraction_seconds > 0
        assert data_leak_extraction.graph_seconds >= 0

    def test_multi_block_document(self):
        text = ("The attacker penetrated the host.\n\n"
                "/usr/bin/wget downloaded the cracker /tmp/john from "
                "192.168.29.128.\n\n/bin/bash executed /tmp/john.")
        result = extract_threat_behaviors(text)
        triples = {(e.source, e.relation, e.target)
                   for e in result.graph.edges}
        assert ("/usr/bin/wget", "download", "/tmp/john") in triples
        assert ("/bin/bash", "execute", "/tmp/john") in triples

    def test_empty_document(self):
        result = extract_threat_behaviors("")
        assert result.graph.nodes == []
        assert result.relations == []

    def test_document_without_iocs(self):
        result = extract_threat_behaviors(
            "The attacker read many files and connected to many servers.")
        assert result.graph.edges == []

    def test_disabling_protection_degrades_extraction(self):
        with_protection = extract_threat_behaviors(DATA_LEAK_TEXT)
        without = ThreatBehaviorExtractor(PipelineConfig(
            ioc_protection=False)).extract(DATA_LEAK_TEXT)
        assert len(without.relations) < len(with_protection.relations)


class TestOpenIEBaselines:
    def test_clause_openie_extracts_triples_from_plain_text(self):
        triples = ClauseOpenIE().extract(
            "the attacker stole the credentials from the server.")
        assert triples

    def test_baselines_shred_iocs_without_protection(self):
        entities = ClauseOpenIE().entities(DATA_LEAK_TEXT)
        assert "/etc/passwd" not in entities

    def test_protection_restores_ioc_strings(self):
        entities = PatternOpenIE(ioc_protection=True).entities(
            DATA_LEAK_TEXT)
        known_iocs = {"/bin/tar", "/etc/passwd", "/bin/bzip2",
                      "/tmp/upload.tar", "/usr/bin/curl"}
        assert known_iocs & set(entities)

    def test_pattern_openie_produces_more_triples(self):
        clause = ClauseOpenIE(ioc_protection=True).extract(DATA_LEAK_TEXT)
        pattern = PatternOpenIE(ioc_protection=True).extract(DATA_LEAK_TEXT)
        assert len(pattern) >= len(clause)

    def test_baselines_much_worse_than_threatraptor(self,
                                                    data_leak_extraction):
        from repro.benchmark.metrics import score_ioc_relations
        gold = DATA_LEAK_EDGES
        ours = score_ioc_relations(data_leak_extraction.relation_triples,
                                   gold)
        baseline_triples = [(t.subject, t.relation, t.obj)
                            for t in PatternOpenIE(ioc_protection=True)
                            .extract(DATA_LEAK_TEXT)]
        baseline = score_ioc_relations(baseline_triples, gold)
        assert ours.f1 > baseline.f1 + 0.4
