"""Query service tests: concurrent HTTP serving over one shared store.

The flagship guarantee: ``/query`` under concurrent clients returns results
byte-identical to serial in-process execution, over a read-only store opened
from a snapshot.  Also covers the compiled-plan and result caches, the
``/hunt`` pipeline, error mapping, and the LRU cache primitive.
"""

from __future__ import annotations

import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ServiceError
from repro.service import (LRUCache, QueryService, ServiceClient,
                           query_is_time_dependent, result_payload)
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor
from repro.tbql.parser import parse_tbql

from .conftest import (DATA_LEAK_EDGES, DATA_LEAK_TEXT, SERVER_BACKENDS,
                       start_backend_server, stop_backend_server)
from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS

#: A query whose resolution depends on the wall clock ("last N" window).
TIME_DEPENDENT_QUERY = \
    'last 2 hours proc p["%/bin/tar%"] read file f as e1 return p'


@pytest.fixture(scope="module")
def served_store(data_leak_events, tmp_path_factory):
    """The data-leak store, snapshotted and reopened read-only."""
    directory = tmp_path_factory.mktemp("service") / "snapshot"
    with DualStore() as store:
        store.load_events(data_leak_events)
        store.save(directory)
    reopened = DualStore.open(directory)
    yield reopened
    reopened.close()


@pytest.fixture(scope="module", params=SERVER_BACKENDS)
def client(request, served_store):
    """A client against each HTTP front end — the whole endpoint and
    correctness suite runs once per backend."""
    service = QueryService(served_store)
    server, thread = start_backend_server(service, request.param)
    host, port = server.server_address[:2]
    with ServiceClient(f"http://{host}:{port}") as client:
        yield client
    stop_backend_server(server, thread)


class TestEndpoints:
    def test_healthz(self, client):
        assert client.healthz()["status"] == "ok"

    def test_stats_shape(self, client, served_store):
        stats = client.stats()
        assert stats["read_only"] is True
        assert stats["store"]["relational_events"] == \
            served_store.relational.count_events()
        for cache in ("plan_cache", "result_cache"):
            assert set(stats[cache]) >= {"size", "maxsize", "hits",
                                         "misses", "evictions"}
        assert stats["uptime_seconds"] >= 0.0

    def test_unknown_path_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._get("/nope")
        assert excinfo.value.status == 404

    def test_bad_tbql_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("this is ! not tbql")
        assert excinfo.value.status == 400

    def test_parse_error_carries_structured_diagnostic(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.query("proc p read file f\nreturn p,")
        error = excinfo.value
        assert error.status == 400
        assert error.diagnostic is not None
        assert error.diagnostic["line"] == 2
        assert error.diagnostic["context"] == "return p,"
        assert isinstance(error.diagnostic["column"], int)
        assert error.diagnostic["message"]

    def test_semantic_error_has_no_diagnostic(self, client):
        # Resolution failures have no source position: the payload keeps
        # the error string and omits the diagnostic field entirely.
        with pytest.raises(ServiceError) as excinfo:
            client.query("proc p read file f return q")
        assert excinfo.value.status == 400
        assert excinfo.value.diagnostic is None

    def test_missing_body_fields_are_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._post("/query", {})
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._post("/hunt", {"report": "   "})
        assert excinfo.value.status == 400


class TestQueryCorrectness:
    @pytest.mark.parametrize("text", EQUIVALENCE_CORPUS)
    def test_served_results_match_in_process(self, client, data_leak_store,
                                             text):
        reference = TBQLExecutor(data_leak_store).execute(text)
        response = client.query(text, use_cache=False)
        assert response["result"] == result_payload(reference)

    def test_concurrent_queries_byte_identical_to_serial(self, client):
        serial = {
            text: json.dumps(client.query(text, use_cache=False)["result"],
                             sort_keys=True)
            for text in EQUIVALENCE_CORPUS
        }

        def run(index):
            text = EQUIVALENCE_CORPUS[index % len(EQUIVALENCE_CORPUS)]
            response = client.query(text, use_cache=False)
            return text, json.dumps(response["result"], sort_keys=True)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(run,
                                     range(4 * len(EQUIVALENCE_CORPUS))))
        for text, payload in outcomes:
            assert payload == serial[text]

    def test_concurrent_mixed_cache_modes_stay_identical(self, client):
        text = EQUIVALENCE_CORPUS[0]
        baseline = json.dumps(client.query(text, use_cache=False)["result"],
                              sort_keys=True)

        def run(index):
            response = client.query(text, use_cache=bool(index % 2))
            return json.dumps(response["result"], sort_keys=True)

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(run, range(32)))
        assert all(payload == baseline for payload in outcomes)


class TestCaches:
    def test_result_cache_hit_flag(self, served_store):
        service = QueryService(served_store)
        text = EQUIVALENCE_CORPUS[0]
        first = service.query(text)
        second = service.query(text)
        assert first["cached"] is False
        assert second["cached"] is True
        assert first["result"] == second["result"]
        bypass = service.query(text, use_cache=False)
        assert bypass["cached"] is False

    def test_plan_cache_reused_when_results_bypass(self, served_store):
        service = QueryService(served_store)
        text = EQUIVALENCE_CORPUS[1]
        service.query(text, use_cache=False)
        before = service.plan_cache.stats()["hits"]
        service.query(text, use_cache=False)
        assert service.plan_cache.stats()["hits"] > before

    def test_time_dependent_queries_never_result_cached(self, served_store):
        assert query_is_time_dependent(parse_tbql(TIME_DEPENDENT_QUERY))
        assert not query_is_time_dependent(parse_tbql(EQUIVALENCE_CORPUS[0]))
        service = QueryService(served_store)
        first = service.query(TIME_DEPENDENT_QUERY)
        second = service.query(TIME_DEPENDENT_QUERY)
        assert first["cached"] is False
        assert second["cached"] is False
        assert service.result_cache.stats()["size"] == 0

    def test_caches_can_be_disabled(self, served_store):
        service = QueryService(served_store, plan_cache_size=0,
                               result_cache_size=0)
        text = EQUIVALENCE_CORPUS[0]
        assert service.query(text)["cached"] is False
        assert service.query(text)["cached"] is False
        assert len(service.plan_cache) == 0
        assert len(service.result_cache) == 0

    def test_counters_track_requests(self, served_store):
        service = QueryService(served_store)
        text = EQUIVALENCE_CORPUS[0]
        service.query(text)
        service.query(text)
        counters = service.stats()["counters"]
        assert counters["queries"] == 2
        assert counters["query_cache_hits"] == 1

    def test_result_cache_invalidated_on_store_reload(self, data_leak_events):
        # A writable store behind the service: reloading its data must not
        # leave the result cache answering from the replaced contents.
        with DualStore() as store:
            store.load_events(data_leak_events)
            service = QueryService(store)
            text = 'proc p["%/bin/tar%"] read file f as e1 return distinct f'
            before = service.query(text)
            assert service.query(text)["cached"] is True
            store.load_events([])   # replace with nothing
            after = service.query(text)
            assert after["cached"] is False
            assert after["result"]["rows"] == []
            assert before["result"]["rows"] != []

    def test_hunt_does_not_pollute_result_cache(self, served_store):
        service = QueryService(served_store)
        hunted = service.hunt(DATA_LEAK_TEXT)
        synthesized = hunted["synthesized_tbql"]
        cached = service.query(synthesized)
        assert cached["cached"] is True
        assert "synthesized_tbql" not in cached
        assert "fuzzy" not in cached


class TestHunt:
    def test_hunt_matches_in_process_pipeline(self, client):
        response = client.hunt(DATA_LEAK_TEXT)
        assert "synthesized_tbql" in response
        signatures = {(event["subject"], event["operation"],
                       event["object"])
                      for event in response["result"]["matched_events"]}
        assert signatures == set(DATA_LEAK_EDGES)

    def test_hunt_fuzzy_fallback_field(self, client):
        # A report whose exact query cannot match: fuzzy fallback runs.
        report = ("The attacker used /bin/absent-tool to read "
                  "/etc/nothing-here.")
        response = client.hunt(report, fuzzy_fallback=True)
        if not response["result"]["rows"]:
            assert "fuzzy" in response
            assert response["fuzzy"]["alignments"] >= 0


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1       # refresh "a"
        cache.put("c", 3)                # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats()["evictions"] == 1

    def test_zero_size_disables(self):
        cache = LRUCache(0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0

    def test_stats_and_clear(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        cache.clear()
        assert len(cache) == 0

    def test_concurrent_access_smoke(self):
        cache = LRUCache(64)

        def worker(seed):
            for index in range(200):
                key = (seed * index) % 97
                cache.put(key, key)
                value = cache.get(key)
                assert value is None or value == key

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(worker, range(1, 9)))
        assert len(cache) <= 64
