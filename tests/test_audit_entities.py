"""Unit tests for the system entity/event model (Tables I-III)."""

import pytest

from repro.audit.entities import (DEFAULT_ATTRIBUTES, EntityType,
                                  EventCategory, FileEntity, NetworkEntity,
                                  Operation, ProcessEntity, SystemEvent,
                                  default_attribute_for, entity_matches_type,
                                  iter_unique_entities, make_entity)


class TestEntityTypes:
    def test_from_string_aliases(self):
        assert EntityType.from_string("proc") is EntityType.PROCESS
        assert EntityType.from_string("process") is EntityType.PROCESS
        assert EntityType.from_string("file") is EntityType.FILE
        assert EntityType.from_string("ip") is EntityType.NETWORK
        assert EntityType.from_string("NETWORK") is EntityType.NETWORK

    def test_from_string_unknown_raises(self):
        with pytest.raises(ValueError):
            EntityType.from_string("registry")

    def test_operation_from_string(self):
        assert Operation.from_string("read") is Operation.READ
        assert Operation.from_string("CONNECT") is Operation.CONNECT

    def test_operation_unknown_raises(self):
        with pytest.raises(ValueError):
            Operation.from_string("teleport")


class TestEntities:
    def test_file_identity_is_path(self):
        first = FileEntity(path="/etc/passwd")
        second = FileEntity(path="/etc/passwd", name="passwd")
        assert first.unique_key == second.unique_key

    def test_file_name_defaults_to_path(self):
        entity = FileEntity(path="/etc/passwd")
        assert entity.name == "/etc/passwd"

    def test_process_identity_is_exe_and_pid(self):
        first = ProcessEntity(exename="/bin/bash", pid=10)
        second = ProcessEntity(exename="/bin/bash", pid=10, user="alice")
        third = ProcessEntity(exename="/bin/bash", pid=11)
        assert first.unique_key == second.unique_key
        assert first.unique_key != third.unique_key

    def test_network_identity_is_five_tuple(self):
        base = dict(srcip="10.0.0.1", srcport=1, dstip="8.8.8.8", dstport=53,
                    protocol="udp")
        first = NetworkEntity(**base)
        second = NetworkEntity(**{**base, "srcport": 2})
        assert first.unique_key != second.unique_key

    def test_default_attributes_match_paper(self):
        assert DEFAULT_ATTRIBUTES[EntityType.FILE] == "name"
        assert DEFAULT_ATTRIBUTES[EntityType.PROCESS] == "exename"
        assert DEFAULT_ATTRIBUTES[EntityType.NETWORK] == "dstip"
        assert default_attribute_for(EntityType.FILE) == "name"

    def test_attributes_dict_contains_type(self):
        entity = ProcessEntity(exename="/bin/ls", pid=4)
        attrs = entity.attributes()
        assert attrs["type"] == "proc"
        assert attrs["exename"] == "/bin/ls"
        assert attrs["pid"] == 4

    def test_make_entity_dispatch(self):
        file_entity = make_entity(EntityType.FILE, path="/tmp/x")
        proc_entity = make_entity(EntityType.PROCESS, exename="/bin/x", pid=1)
        net_entity = make_entity(EntityType.NETWORK, srcip="1.1.1.1",
                                 srcport=1, dstip="2.2.2.2", dstport=2)
        assert entity_matches_type(file_entity, EntityType.FILE)
        assert entity_matches_type(proc_entity, EntityType.PROCESS)
        assert entity_matches_type(net_entity, EntityType.NETWORK)

    def test_entity_ids_are_unique(self):
        ids = {FileEntity(path=f"/tmp/{i}").entity_id for i in range(50)}
        assert len(ids) == 50


class TestSystemEvent:
    def _event(self, operation=Operation.READ, obj=None, start=0.0, end=1.0):
        subject = ProcessEntity(exename="/bin/cat", pid=2)
        obj = obj or FileEntity(path="/etc/hosts")
        return SystemEvent(subject=subject, operation=operation, obj=obj,
                           start_time=start, end_time=end, data_amount=10)

    def test_duration(self):
        assert self._event(start=1.0, end=3.5).duration == 2.5

    def test_end_before_start_raises(self):
        with pytest.raises(ValueError):
            self._event(start=2.0, end=1.0)

    def test_category_by_object_type(self):
        assert self._event().category is EventCategory.FILE_EVENT
        proc_obj = ProcessEntity(exename="/bin/sh", pid=9)
        assert self._event(obj=proc_obj).category is \
            EventCategory.PROCESS_EVENT
        net_obj = NetworkEntity(srcip="1.1.1.1", srcport=1, dstip="2.2.2.2",
                                dstport=2)
        assert self._event(obj=net_obj).category is \
            EventCategory.NETWORK_EVENT

    def test_merged_with_combines_time_and_bytes(self):
        first = self._event(start=0.0, end=1.0)
        second = self._event(start=1.5, end=2.0)
        merged = first.merged_with(second)
        assert merged.start_time == 0.0
        assert merged.end_time == 2.0
        assert merged.data_amount == 20

    def test_attributes_roundtrip(self):
        event = self._event()
        attrs = event.attributes()
        assert attrs["operation"] == "read"
        assert attrs["category"] == "file_event"
        assert attrs["data_amount"] == 10

    def test_iter_unique_entities_deduplicates(self):
        subject = ProcessEntity(exename="/bin/cat", pid=2)
        obj = FileEntity(path="/etc/hosts")
        events = [SystemEvent(subject=subject, operation=Operation.READ,
                              obj=obj, start_time=i, end_time=i + 0.1)
                  for i in range(5)]
        assert len(list(iter_unique_entities(events))) == 2
