"""Tests for the v3 columnar segment payload and its scan path.

Covers the ``events.col`` container format, the SQLite comparison
semantics the columnar evaluator reproduces (differentially, against a
live SQLite connection), numpy/pure-python selection parity, backward
compatibility with format-v2 snapshots (no columnar payload), the
scatter pool-failure fallback, and the worker/strategy argument
validation surfaced through the executor and the CLI.
"""

from __future__ import annotations

import sqlite3
from operator import attrgetter
from pathlib import Path

import pytest

from repro.audit import AuditCollector, CollectorConfig
from repro.errors import StorageError
from repro.storage import DualStore
from repro.storage.columnar import (NULL_INT, ColumnarSegment,
                                    EventColumns, write_columnar,
                                    write_columnar_from_sqlite)
from repro.storage.relational.sqlgen import comparison, in_list
from repro.tbql.ast import (AttributeComparison, BooleanFilter,
                            MembershipFilter, NegatedFilter)
from repro.tbql.colscan import (PatternSpec, _eval_comparison,
                                _eval_membership, scan_columnar,
                                unpack_rows)
from repro.tbql.executor import TBQLExecutor
from repro.tbql.scatter import SegmentScanner

from .conftest import record_data_leak_attack
from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS

try:
    import numpy as _numpy
except ImportError:   # pragma: no cover - numpy-less environments
    _numpy = None


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _entity(entity_id, etype, **attrs):
    """ENTITY_COLUMNS-ordered tuple with keyword attribute overrides."""
    row = {"id": entity_id, "type": etype, "name": None, "path": None,
           "exename": None, "pid": None, "user": None, "grp": None,
           "cmdline": None, "srcip": None, "srcport": None, "dstip": None,
           "dstport": None, "protocol": None}
    row.update(attrs)
    return (row["id"], row["type"], row["name"], row["path"],
            row["exename"], row["pid"], row["user"], row["grp"],
            row["cmdline"], row["srcip"], row["srcport"], row["dstip"],
            row["dstport"], row["protocol"])


def _sample_payload(tmp_path):
    """A small hand-built payload with NULLs and wildcard-ish strings."""
    events = EventColumns()
    events.append(1, 1, 2, "read", "file", 10.0, 11.0, 1.0, 64, 0, "h0")
    events.append(2, 1, 3, "write", "file", 12.0, 13.5, 1.5, 128, 0, "h0")
    events.append(3, 4, 2, "read", "file", 14.0, 15.0, 1.0, 32, 1, "h1")
    entities = [
        _entity(1, "proc", exename="/bin/tar", pid=101, user="root"),
        _entity(2, "file", name="/etc/pass_wd"),
        _entity(3, "file", name="/tmp/50%.tar"),
        _entity(4, "proc", exename="/usr/bin/GPG"),
    ]
    path = tmp_path / "events.col"
    size = write_columnar(path, events, entities)
    assert size == path.stat().st_size > 0
    return path


def _segmented_pair(batches=3):
    """A (monolithic, segmented) store pair over the attack corpus."""
    collector = AuditCollector(CollectorConfig(seed=7))
    record_data_leak_attack(collector)
    events = sorted(collector.events(),
                    key=attrgetter("start_time", "event_id"))
    mono = DualStore()
    seg = DualStore(layout="segmented")
    step = len(events) // batches + 1
    for index in range(0, len(events), step):
        batch = events[index:index + step]
        for store in (mono, seg):
            store.append_events(batch)
            store.flush_appends()
    return mono, seg


# ---------------------------------------------------------------------------
# container format
# ---------------------------------------------------------------------------


def test_roundtrip_preserves_columns(tmp_path):
    path = _sample_payload(tmp_path)
    segment = ColumnarSegment(path)
    try:
        assert segment.event_count == 3
        assert segment.entity_count == 4
        assert list(segment.column("event.id")) == [1, 2, 3]
        assert list(segment.column("event.subject_id")) == [1, 1, 4]
        assert list(segment.column("event.start_time")) == [10.0, 12.0,
                                                            14.0]
        ops = segment.column("event.operation")
        assert [segment.strings[code] for code in ops] == \
            ["read", "write", "read"]
        names = segment.column("entity.name")
        assert [segment.strings[code] for code in names] == \
            [None, "/etc/pass_wd", "/tmp/50%.tar", None]
        pids = segment.column("entity.pid")
        assert list(pids) == [101, NULL_INT, NULL_INT, NULL_INT]
        assert segment.dense_entities
        assert segment.entity_index(3) == 2
        assert segment.code_of("read") is not None
        assert segment.code_of("never-stored") is None
    finally:
        segment.close()


def test_sparse_entity_ids_resolve_via_map(tmp_path):
    events = EventColumns()
    events.append(1, 10, 70, "read", "file", 1.0, 2.0, 1.0, 0, 0, "h")
    entities = [_entity(10, "proc"), _entity(70, "file")]
    path = tmp_path / "sparse.col"
    write_columnar(path, events, entities)
    segment = ColumnarSegment(path)
    try:
        assert not segment.dense_entities
        assert segment.entity_index(10) == 0
        assert segment.entity_index(70) == 1
        with pytest.raises(StorageError):
            segment.entity_index(99)
    finally:
        segment.close()


def test_reader_rejects_bad_magic(tmp_path):
    path = tmp_path / "bad.col"
    path.write_bytes(b"NOTMAGIC" + b"\0" * 64)
    with pytest.raises(StorageError, match="not a columnar payload"):
        ColumnarSegment(path)


def test_reader_rejects_future_version(tmp_path):
    path = _sample_payload(tmp_path)
    data = path.read_bytes()
    assert data.count(b'"version": 1') == 1
    path.write_bytes(data.replace(b'"version": 1', b'"version": 9'))
    with pytest.raises(StorageError, match="version 9"):
        ColumnarSegment(path)


def test_sqlite_fallback_writer_matches_fast_path(tmp_path):
    """Sealed segments produce identical payloads from either writer."""
    _mono, seg = _segmented_pair(batches=2)
    try:
        view = seg.segment_view()
        assert view.sealed
        info = view.sealed[0]
        fast = Path(info.columnar_path).read_bytes()
        rebuilt_path = tmp_path / "rebuilt.col"
        write_columnar_from_sqlite(info.sqlite_path, rebuilt_path)
        rebuilt = ColumnarSegment(rebuilt_path)
        fast_segment = ColumnarSegment(info.columnar_path)
        try:
            assert rebuilt.event_count == fast_segment.event_count
            for name in ("event.id", "event.subject_id",
                         "event.object_id", "event.start_time",
                         "event.end_time", "event.data_amount"):
                assert list(rebuilt.column(name)) == \
                    list(fast_segment.column(name))
            assert [rebuilt.strings[c]
                    for c in rebuilt.column("event.operation")] == \
                [fast_segment.strings[c]
                 for c in fast_segment.column("event.operation")]
        finally:
            rebuilt.close()
            fast_segment.close()
        assert len(fast) > 0
    finally:
        _mono.close()
        seg.close()


# ---------------------------------------------------------------------------
# SQLite comparison semantics (differential)
# ---------------------------------------------------------------------------

_OPS = ("=", "!=", "<", "<=", ">", ">=")

_NUMERIC_CELLS = [None, -3, 0, 1, 10, 10.5]
_NUMERIC_VALUES = ["10", " 10 ", "abc", 10, 10.0, 10.5, True, "1%", "10%"]

_TEXT_CELLS = [None, "abc", "ABC", "a_b", "aXb", "10", "10.5", "/tmp/x"]
_TEXT_VALUES = ["abc", "AbC", "a%b", "%b", "a_b", "10", 10, 10.0, True,
                "/tmp/%"]


def _sqlite_verdicts(affinity, cells, values):
    """SQLite's own answer for every (cell, op, value) combination."""
    connection = sqlite3.connect(":memory:")
    connection.execute(f"CREATE TABLE t (cell {affinity})")
    for index, cell in enumerate(cells):
        connection.execute("INSERT INTO t (rowid, cell) VALUES (?, ?)",
                           (index + 1, cell))
    verdicts = {}
    for op in _OPS:
        for value in values:
            params: list = []
            clause = comparison("cell", op, value, params)
            for index, cell in enumerate(cells):
                row = connection.execute(
                    f"SELECT {clause} FROM t WHERE rowid = ?",
                    (*params, index + 1)).fetchone()
                verdicts[(index, op, repr(value))] = \
                    None if row[0] is None else bool(row[0])
    connection.close()
    return verdicts


@pytest.mark.parametrize("affinity,cells,values,numeric", [
    ("INTEGER", _NUMERIC_CELLS, _NUMERIC_VALUES, True),
    ("REAL", _NUMERIC_CELLS, _NUMERIC_VALUES, True),
    ("TEXT", _TEXT_CELLS, _TEXT_VALUES, False),
])
def test_comparisons_match_sqlite(affinity, cells, values, numeric):
    verdicts = _sqlite_verdicts(affinity, cells, values)
    for index, cell in enumerate(cells):
        for op in _OPS:
            for value in values:
                got = _eval_comparison(cell, op, value, numeric)
                expected = verdicts[(index, op, repr(value))]
                assert got == expected, \
                    f"{cell!r} {op} {value!r} ({affinity}): " \
                    f"{got} != sqlite {expected}"


@pytest.mark.parametrize("affinity,cells,values,numeric", [
    ("INTEGER", _NUMERIC_CELLS, (10, "10", 3), True),
    ("TEXT", _TEXT_CELLS, ("abc", "10", "a_b"), False),
])
@pytest.mark.parametrize("negated", [False, True])
def test_membership_matches_sqlite(affinity, cells, values, numeric,
                                   negated):
    connection = sqlite3.connect(":memory:")
    connection.execute(f"CREATE TABLE t (cell {affinity})")
    for index, cell in enumerate(cells):
        connection.execute("INSERT INTO t (rowid, cell) VALUES (?, ?)",
                           (index + 1, cell))
    params: list = []
    clause = in_list("cell", list(values), negated, params)
    for index, cell in enumerate(cells):
        row = connection.execute(
            f"SELECT {clause} FROM t WHERE rowid = ?",
            (*params, index + 1)).fetchone()
        expected = None if row[0] is None else bool(row[0])
        got = _eval_membership(cell, tuple(values), negated, numeric)
        assert got == expected, f"{cell!r} IN {values!r} negated={negated}"
    connection.close()


# ---------------------------------------------------------------------------
# numpy / pure-python selection parity
# ---------------------------------------------------------------------------


_PARITY_SPECS = [
    PatternSpec(subject_type="proc", object_type="file", operations=None,
                subject_filter=None, object_filter=None,
                pattern_filter=None, window=None, subject_candidates=None,
                object_candidates=None),
    PatternSpec(subject_type="proc", object_type="file",
                operations=("read",),
                subject_filter=AttributeComparison("exename", "=",
                                                   "%/bin/tar%"),
                object_filter=AttributeComparison("name", "=", "%pass%"),
                pattern_filter=None, window=(10.0, 15.0),
                subject_candidates=None, object_candidates=None),
    PatternSpec(subject_type="proc", object_type="file", operations=None,
                subject_filter=NegatedFilter(
                    AttributeComparison("user", "=", "root")),
                object_filter=BooleanFilter("||", (
                    AttributeComparison("name", "=", "%50\\%"),
                    MembershipFilter("name", ("/etc/pass_wd",), False))),
                pattern_filter=AttributeComparison("data_amount", ">=",
                                                   64),
                window=None, subject_candidates=(1, 4),
                object_candidates=None, min_event_id=2),
]


@pytest.mark.skipif(_numpy is None, reason="numpy not installed")
@pytest.mark.parametrize("spec", _PARITY_SPECS,
                         ids=["unfiltered", "filtered", "kleene"])
def test_numpy_matches_python_selection(tmp_path, monkeypatch, spec):
    path = _sample_payload(tmp_path)
    segment = ColumnarSegment(path)
    try:
        monkeypatch.delenv("REPRO_COLUMNAR_NUMPY", raising=False)
        vectorized = unpack_rows(scan_columnar(segment, spec))
        monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
        pure = unpack_rows(scan_columnar(segment, spec))
        assert vectorized == pure
    finally:
        segment.close()


def test_pure_python_corpus_equivalence(monkeypatch):
    """The portable path (CI has no numpy) answers the corpus correctly."""
    monkeypatch.setenv("REPRO_COLUMNAR_NUMPY", "0")
    mono, seg = _segmented_pair()
    reference = TBQLExecutor(mono)
    executor = TBQLExecutor(seg, scan_strategy="columnar")
    try:
        for text in EQUIVALENCE_CORPUS[:6]:
            expected = reference.execute(text)
            got = executor.execute(text)
            assert got.rows == expected.rows, text
            assert got.matched_events == expected.matched_events, text
    finally:
        executor.close()
        reference.close()
        mono.close()
        seg.close()


# ---------------------------------------------------------------------------
# backward compatibility: v2 snapshots have no events.col
# ---------------------------------------------------------------------------


def test_v2_snapshot_without_columnar_still_answers(tmp_path):
    mono, seg = _segmented_pair()
    snap = tmp_path / "snap"
    try:
        seg.save(snap)
        expected = [TBQLExecutor(mono).execute(text).rows
                    for text in EQUIVALENCE_CORPUS[:4]]
    finally:
        mono.close()
        seg.close()
    # Rewrite the snapshot as a format-v2 one: no columnar payloads.
    for payload in snap.glob("segments/*/events.col"):
        payload.unlink()
    manifest_path = snap / "manifest.json"
    manifest = manifest_path.read_text(encoding="utf-8")
    assert '"format_version": 3' in manifest
    manifest_path.write_text(
        manifest.replace('"format_version": 3', '"format_version": 2'),
        encoding="utf-8")
    with DualStore.open(snap) as reopened:
        view = reopened.segment_view()
        assert view.sealed and not any(info.has_columnar()
                                       for info in view.sealed)
        executor = TBQLExecutor(reopened, scan_strategy="columnar")
        try:
            for text, rows in zip(EQUIVALENCE_CORPUS[:4], expected):
                result = executor.execute(text)
                assert result.rows == rows, text
                # The scatter path ran (columnar requested, SQLite
                # fallback per segment) and reported its strategy.
                sql_steps = [step for step in result.plan
                             if step.segments_scanned is not None]
                assert sql_steps
                assert all(step.scan_strategy == "columnar"
                           for step in sql_steps)
        finally:
            executor.close()


def test_v3_snapshot_reopens_with_columnar(tmp_path):
    _mono, seg = _segmented_pair()
    snap = tmp_path / "snap"
    try:
        seg.save(snap)
    finally:
        _mono.close()
        seg.close()
    with DualStore.open(snap) as reopened:
        view = reopened.segment_view()
        assert view.sealed
        assert all(info.has_columnar() for info in view.sealed)
        stats = reopened.segment_stats()
        for entry in stats["segments"]:
            payload = entry["payload_bytes"]
            assert payload["relational"] > 0
            assert payload["columnar"] > 0
            assert payload["graph"] > 0


# ---------------------------------------------------------------------------
# pool-failure fallback and argument validation
# ---------------------------------------------------------------------------


def test_pool_failure_falls_back_serially(monkeypatch, caplog):
    import repro.tbql.scatter as scatter_module

    def broken_get_context(method=None):
        raise OSError("no semaphores on this platform")

    monkeypatch.setattr(scatter_module.multiprocessing, "get_context",
                        broken_get_context)
    mono, seg = _segmented_pair()
    reference = TBQLExecutor(mono)
    executor = TBQLExecutor(seg, workers=4)
    try:
        assert executor.pool_fallback is False
        with caplog.at_level("WARNING", logger="repro.tbql.scatter"):
            result = executor.execute(EQUIVALENCE_CORPUS[0])
        assert executor.pool_fallback is True
        assert any("pool creation failed" in record.message
                   for record in caplog.records)
        expected = reference.execute(EQUIVALENCE_CORPUS[0])
        assert result.rows == expected.rows
        # The flag is surfaced on the scatter plan steps.
        assert any(step.pool_fallback for step in result.plan
                   if step.segments_scanned is not None)
    finally:
        executor.close()
        reference.close()
        mono.close()
        seg.close()


@pytest.mark.parametrize("workers", [0, -1])
def test_invalid_worker_counts_are_rejected(workers):
    with pytest.raises(ValueError, match="positive integer"):
        SegmentScanner(workers=workers)
    with DualStore() as store:
        with pytest.raises(ValueError, match="positive integer"):
            TBQLExecutor(store, workers=workers)


def test_invalid_scan_strategy_is_rejected():
    with DualStore() as store:
        with pytest.raises(ValueError, match="unknown scan strategy"):
            TBQLExecutor(store, scan_strategy="rowwise")


def test_cli_rejects_unknown_scan_strategy(tmp_path, capsys):
    from repro.cli import main

    log = tmp_path / "audit.log"
    log.write_text("", encoding="utf-8")
    with pytest.raises(SystemExit) as excinfo:
        main(["query", "--log", str(log), "--tbql",
              "proc p read file f return p", "--scan-strategy", "bogus"])
    assert excinfo.value.code == 2
    assert "--scan-strategy" in capsys.readouterr().err
