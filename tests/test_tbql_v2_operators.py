"""TBQL v2 operator tests: sequence, negation, aggregation, diagnostics.

Each operator family is checked end-to-end (parse -> resolve -> execute)
and differentially: the optimized implementation against its naive
reference behind the strategy flag (``negation_strategy`` /
``aggregation_strategy``), and the executor against the single-statement
SQL baseline where expressible.
"""

from __future__ import annotations

import pytest

from repro.errors import TBQLSemanticError, TBQLSyntaxError
from repro.storage import DualStore
from repro.tbql.aggregate import AGGREGATION_STRATEGIES, apply_aggregation
from repro.tbql.compiler_cypher import compile_giant_cypher
from repro.tbql.diagnostics import ParseDiagnostic, make_diagnostic
from repro.tbql.executor import NEGATION_STRATEGIES, TBQLExecutor
from repro.tbql.formatter import format_query
from repro.tbql.lexer import tokenize
from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import (ResolvedAggregation, resolve_query,
                                  query_is_time_dependent)

from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS

#: The corpus entries added for the v2 operators (kept at the tail).
V2_CORPUS = [text for text in EQUIVALENCE_CORPUS
             if "then" in text or "and not" in text or "count()" in text]


# ---------------------------------------------------------------------------
# parsing
# ---------------------------------------------------------------------------
class TestSequenceParsing:
    def test_then_builds_sequence_link(self):
        query = parse_tbql("proc p read file f "
                           "then proc p write file g return p")
        assert len(query.patterns) == 2
        assert len(query.sequence_links) == 1
        link = query.sequence_links[0]
        assert (link.left_index, link.right_index) == (0, 1)
        assert link.max_gap is None

    def test_then_with_gap_bound(self):
        query = parse_tbql("proc p read file f "
                           "then[90 sec] proc p write file g return p")
        link = query.sequence_links[0]
        assert link.max_gap == 90.0
        assert link.unit == "sec"

    def test_then_chain(self):
        query = parse_tbql("proc p read file f "
                           "then proc p write file g "
                           "then[5 min] proc q read file g return p, q")
        assert [(link.left_index, link.right_index)
                for link in query.sequence_links] == [(0, 1), (1, 2)]
        assert query.sequence_links[1].unit == "min"

    def test_then_requires_pattern(self):
        with pytest.raises(TBQLSyntaxError, match="after 'then'"):
            parse_tbql("proc p read file f then return p")

    def test_then_cannot_target_absence_pattern(self):
        with pytest.raises(TBQLSyntaxError, match="absence"):
            parse_tbql("proc p read file f "
                       "then and not proc p write file g return p")


class TestNegationParsing:
    def test_and_not_marks_pattern_negated(self):
        query = parse_tbql("proc p read file f "
                           "and not proc p connect ip i return p")
        assert [pattern.negated for pattern in query.patterns] == \
            [False, True]

    def test_and_alone_still_an_identifier(self):
        # 'and' is not a keyword; a pattern id may legally be 'and'.
        tokens = tokenize("and not")
        assert tokens[0].kind == "ident"
        assert tokens[1].kind == "keyword"

    def test_multiple_absence_patterns(self):
        query = parse_tbql("proc p read file f "
                           "and not proc p connect ip i "
                           "and not proc p delete file f return p")
        assert [pattern.negated for pattern in query.patterns] == \
            [False, True, True]


class TestAggregationParsing:
    def test_count_group_by_top(self):
        query = parse_tbql("proc p read file f "
                           "return p, count() group by p top 3")
        clause = query.return_clause
        assert [item.aggregate for item in clause.items] == [None, "count"]
        assert [item.entity_id for item in clause.group_by] == ["p"]
        assert clause.top_n == 3

    def test_group_by_attribute(self):
        query = parse_tbql("proc p read file f "
                           "return p.pid, count() group by p.pid")
        assert query.return_clause.group_by[0].attribute == "pid"

    def test_top_requires_positive_integer(self):
        with pytest.raises(TBQLSyntaxError, match="positive"):
            parse_tbql("proc p read file f return count() top 0")

    def test_keywords_usable_as_attribute_names(self):
        # 'group' / 'count' / 'top' became keywords; after a dot they must
        # still parse as attribute names.
        query = parse_tbql("proc p read file f return p.group")
        assert query.return_clause.items[0].attribute == "group"


# ---------------------------------------------------------------------------
# diagnostics
# ---------------------------------------------------------------------------
class TestParseDiagnostics:
    def test_parser_error_carries_diagnostic(self):
        source = "proc p read file f\nreturn p,"
        with pytest.raises(TBQLSyntaxError) as excinfo:
            parse_tbql(source)
        diagnostic = excinfo.value.diagnostic
        assert isinstance(diagnostic, ParseDiagnostic)
        assert diagnostic.line == 2
        assert diagnostic.context == "return p,"

    def test_lexer_error_carries_diagnostic(self):
        with pytest.raises(TBQLSyntaxError) as excinfo:
            tokenize("proc p @ read file f")
        diagnostic = excinfo.value.diagnostic
        assert diagnostic is not None
        assert diagnostic.line == 1
        assert diagnostic.column == 8
        assert diagnostic.context == "proc p @ read file f"

    def test_caret_points_at_column(self):
        diagnostic = make_diagnostic("proc p read fil f", "boom", 1, 13)
        assert diagnostic.caret_line() == " " * 12 + "^"
        rendered = diagnostic.render()
        assert "line 1, column 13: boom" in rendered
        assert rendered.splitlines()[-1] == "  " + " " * 12 + "^"

    def test_as_dict_round_trip(self):
        diagnostic = make_diagnostic("proc p", "boom", 1, 3)
        assert diagnostic.as_dict() == {"message": "boom", "line": 1,
                                        "column": 3, "context": "proc p"}

    def test_line_beyond_source_renders_header_only(self):
        diagnostic = make_diagnostic("ab", "eof", 99, 1)
        assert diagnostic.context == ""
        assert diagnostic.render() == "line 99, column 1: eof"


# ---------------------------------------------------------------------------
# semantics
# ---------------------------------------------------------------------------
class TestV2Semantics:
    def test_then_resolves_to_temporal_relation(self):
        resolved = resolve_query(parse_tbql(
            "proc p read file f then[60 sec] proc p write file g "
            "return p"))
        assert len(resolved.temporal_relations) == 1
        relation = resolved.temporal_relations[0]
        assert relation.kind == "then"
        assert relation.max_gap == 60.0

    def test_all_negated_rejected(self):
        with pytest.raises(TBQLSemanticError, match="solely"):
            resolve_query(parse_tbql(
                "and not proc p read file f return p"))

    def test_return_of_negation_only_entity_rejected(self):
        with pytest.raises(TBQLSemanticError, match="absence"):
            resolve_query(parse_tbql(
                "proc p read file f and not proc q connect ip i "
                "return p, q"))

    def test_temporal_reference_to_negated_pattern_rejected(self):
        with pytest.raises(TBQLSemanticError, match="absence"):
            resolve_query(parse_tbql(
                "proc p read file f as e1 "
                "and not proc p connect ip i as e2 "
                "with e1 before e2 return p"))

    def test_attribute_relation_to_negation_only_entity_rejected(self):
        with pytest.raises(TBQLSemanticError, match="absence"):
            resolve_query(parse_tbql(
                "proc p read file f "
                "and not proc q connect ip i "
                "with p.pid = q.pid return p"))

    def test_group_by_requires_count(self):
        with pytest.raises(TBQLSemanticError, match="count"):
            resolve_query(parse_tbql(
                "proc p read file f return p group by p"))

    def test_top_requires_count(self):
        with pytest.raises(TBQLSemanticError, match="count"):
            resolve_query(parse_tbql(
                "proc p read file f return p top 3"))

    def test_at_most_one_count(self):
        with pytest.raises(TBQLSemanticError, match="at most one"):
            resolve_query(parse_tbql(
                "proc p read file f return count(), count()"))

    def test_distinct_count_rejected(self):
        with pytest.raises(TBQLSemanticError, match="distinct"):
            resolve_query(parse_tbql(
                "proc p read file f return distinct p, count()"))

    def test_plain_item_must_be_grouped(self):
        with pytest.raises(TBQLSemanticError, match="group by"):
            resolve_query(parse_tbql(
                "proc p read file f return p, f, count() group by p"))

    def test_implicit_grouping(self):
        resolved = resolve_query(parse_tbql(
            "proc p read file f return p.pid, count()"))
        assert resolved.aggregation == ResolvedAggregation(
            group_by=[("p", "pid")], output=[("p", "pid"), None],
            top_n=None)
        # return_items mirrors the grouping keys for the compilers.
        assert resolved.return_items == [("p", "pid")]

    def test_default_return_skips_negated_entities(self):
        resolved = resolve_query(parse_tbql(
            "proc p read file f and not proc p connect ip i"))
        assert {entity for entity, _attr in resolved.return_items} == \
            {"p", "f"}

    def test_sequence_query_not_time_dependent(self):
        query = parse_tbql("proc p read file f then proc p write file g "
                           "return p")
        assert not query_is_time_dependent(query)


# ---------------------------------------------------------------------------
# execution (differential against references)
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def v2_store(data_leak_events):
    store = DualStore()
    store.load_events(data_leak_events)
    yield store
    store.close()


class TestSequenceExecution:
    def test_then_orders_matches(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'then proc q["%/usr/bin/curl%"] connect ip i '
            'return distinct p, q, i.dstip').rows
        assert rows == [{"p.exename": "/bin/tar",
                         "q.exename": "/usr/bin/curl",
                         "i.dstip": "192.168.29.128"}]

    def test_then_reversed_is_empty(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            'proc q["%/usr/bin/curl%"] connect ip i '
            'then proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'return p').rows
        assert rows == []

    def test_tight_gap_prunes(self, v2_store):
        unbounded = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'then proc q["%/usr/bin/curl%"] connect ip i '
            'return distinct p, q').rows
        bounded = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'then[1 sec] proc q["%/usr/bin/curl%"] connect ip i '
            'return distinct p, q').rows
        assert len(unbounded) == 1
        assert bounded == []   # the attack takes longer than a second

    def test_then_strictly_stronger_than_shared_window(self, v2_store):
        # Both orderings match a plain two-pattern join; 'then' keeps
        # exactly the ordered subset.
        joined = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'proc q["%/usr/bin/curl%"] connect ip i '
            'return distinct p, q').rows
        sequenced = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'then proc q["%/usr/bin/curl%"] connect ip i '
            'return distinct p, q').rows
        assert sequenced == joined   # attack is ordered: read then exfil


class TestNegationExecution:
    def test_absence_holds(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'and not proc p connect ip i return distinct p').rows
        assert rows == [{"p.exename": "/bin/tar"}]

    def test_absence_vetoes(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            'proc p["%/usr/bin/curl%"] read file f '
            'and not proc p connect ip i return p, f').rows
        assert rows == []

    def test_unrelated_absence_is_global(self, v2_store):
        # A negated pattern sharing no entity with the positives acts as
        # a global guard: any match at all vetoes everything.
        rows = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'and not proc q["%curl%"] connect ip i return p').rows
        assert rows == []

    def test_negated_path_pattern(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'and not proc p ~>(1~2)[connect] ip i '
            'return distinct p').rows
        assert rows == [{"p.exename": "/bin/tar"}]

    def test_unknown_negation_strategy_rejected(self, v2_store):
        with pytest.raises(ValueError):
            TBQLExecutor(v2_store, negation_strategy="bloom")

    @pytest.mark.parametrize("text", V2_CORPUS)
    def test_hash_matches_scan_reference(self, v2_store, text):
        results = []
        for strategy in NEGATION_STRATEGIES:
            executor = TBQLExecutor(v2_store, negation_strategy=strategy)
            result = executor.execute(text)
            results.append((result.rows, result.matched_events))
        assert results[0] == results[1]

    def test_plan_marks_negated_steps(self, v2_store):
        result = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'and not proc p connect ip i return p')
        flags = {step.pattern_id: step.negated for step in result.plan}
        assert sorted(flags.values()) == [False, True]
        # Negated steps run after every positive step.
        assert [step.negated for step in result.plan] == \
            sorted(step.negated for step in result.plan)


class TestAggregationExecution:
    def test_top_n_noisy_processes(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            "proc p read file f return p, count() group by p top 3").rows
        assert len(rows) == 3
        counts = [row["count"] for row in rows]
        assert counts == sorted(counts, reverse=True)
        assert all(set(row) == {"p.exename", "count"} for row in rows)

    def test_global_count(self, v2_store):
        rows = TBQLExecutor(v2_store).execute(
            'proc p["%/bin/tar%"] read file f return count()').rows
        assert len(rows) == 1
        assert rows[0]["count"] >= 1

    def test_unknown_aggregation_strategy_rejected(self, v2_store):
        with pytest.raises(ValueError):
            TBQLExecutor(v2_store, aggregation_strategy="sorted")
        with pytest.raises(ValueError):
            apply_aggregation([], ResolvedAggregation(
                group_by=[], output=[None], top_n=None), strategy="nope")

    @pytest.mark.parametrize("text", V2_CORPUS)
    def test_hash_matches_scan_reference(self, v2_store, text):
        results = []
        for strategy in AGGREGATION_STRATEGIES:
            executor = TBQLExecutor(v2_store,
                                    aggregation_strategy=strategy)
            results.append(executor.execute(text).rows)
        assert results[0] == results[1]

    def test_tie_order_is_first_seen_stable(self):
        aggregation = ResolvedAggregation(group_by=[("p", "pid")],
                                          output=[("p", "pid"), None],
                                          top_n=None)
        rows = [{"p.pid": 2}, {"p.pid": 1}, {"p.pid": 2}, {"p.pid": 1}]
        expected = [{"p.pid": 1, "count": 2}, {"p.pid": 2, "count": 2}]
        for strategy in AGGREGATION_STRATEGIES:
            assert apply_aggregation(rows, aggregation, strategy) == \
                expected


class TestJoinStrategyEquivalenceV2:
    @pytest.mark.parametrize("text", V2_CORPUS)
    def test_hash_join_matches_backtracking(self, v2_store, text):
        results = []
        for strategy in ("hash", "backtracking"):
            result = TBQLExecutor(v2_store,
                                  join_strategy=strategy).execute(text)
            results.append((result.rows, result.matched_events))
        assert results[0] == results[1]


class TestGiantBaselinesV2:
    @pytest.mark.parametrize("text", [
        text for text in V2_CORPUS if "~>" not in text])
    def test_giant_sql_agrees_with_executor(self, v2_store, text):
        executor = TBQLExecutor(v2_store)
        resolved = resolve_query(parse_tbql(text))
        giant = executor.execute_giant_sql(resolved)
        rows = executor.execute(resolved).rows
        normalized = [{key.replace("_", ".", 1) if key != "count"
                       else key: value for key, value in row.items()}
                      for row in giant]
        if resolved.distinct:
            deduped = []
            for row in normalized:
                if row not in deduped:
                    deduped.append(row)
            normalized = deduped
        assert sorted(map(repr, normalized)) == sorted(map(repr, rows))

    def test_giant_cypher_rejects_negation(self, v2_store):
        resolved = resolve_query(parse_tbql(
            "proc p read file f and not proc p connect ip i return p"))
        with pytest.raises(TBQLSemanticError, match="NOT EXISTS"):
            compile_giant_cypher(resolved)

    def test_giant_cypher_rejects_aggregation(self, v2_store):
        resolved = resolve_query(parse_tbql(
            "proc p read file f return count()"))
        with pytest.raises(TBQLSemanticError, match="aggregation"):
            compile_giant_cypher(resolved)


class TestFormatterV2:
    @pytest.mark.parametrize("text", V2_CORPUS)
    def test_canonical_text_round_trips(self, text):
        formatted = format_query(parse_tbql(text))
        assert format_query(parse_tbql(formatted)) == formatted

    def test_rendering(self):
        formatted = format_query(parse_tbql(
            'proc p read file f then[60 sec] proc p write file g '
            'and not proc p connect ip i '
            'return p, count() group by p top 5'))
        assert "then[60 sec] proc p write file g" in formatted
        assert "and not proc p connect ip i" in formatted
        assert formatted.endswith("return p, count()\ngroup by p\ntop 5")
