"""Service-level observability: /metrics, /healthz, profile, slow log.

Everything here runs against both HTTP front ends (the threaded
``http.server`` backend and the asyncio backend) — the observability
surface is part of the service contract, not a property of one server.
Each test gets a fresh default registry so metric assertions never see
another test's increments.
"""

from __future__ import annotations

import json

import pytest

import repro
from repro.obs.metrics import MetricsRegistry, set_registry
from repro.service import QueryService, ServiceClient
from repro.service.server import canonical_endpoint
from repro.storage import DualStore

from .conftest import (SERVER_BACKENDS, start_backend_server,
                       stop_backend_server)
from .promtext import parse_prometheus_text

QUERY = 'proc p["%/bin/tar%"] read file f as e1 return distinct f'


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield
    finally:
        set_registry(previous)


@pytest.fixture()
def store(data_leak_events):
    with DualStore() as store:
        store.load_events(data_leak_events)
        yield store


@pytest.fixture(params=SERVER_BACKENDS)
def backend_client(request, store):
    service = QueryService(store)
    server, thread = start_backend_server(service, request.param)
    host, port = server.server_address[:2]
    client = ServiceClient(f"http://{host}:{port}")
    try:
        yield request.param, client
    finally:
        client.close()
        stop_backend_server(server, thread)


class TestHealthz:
    def test_payload_shape_is_pinned(self, backend_client):
        backend, client = backend_client
        payload = client.healthz()
        assert set(payload) == {"status", "uptime_seconds", "version",
                                "backend"}
        assert payload["status"] == "ok"
        assert payload["version"] == repro.__version__
        assert payload["backend"] == backend
        assert payload["uptime_seconds"] >= 0


class TestMetricsEndpoint:
    def test_exposition_is_valid_and_covers_requests(
            self, backend_client):
        backend, client = backend_client
        client.query(QUERY)
        client.query(QUERY)          # second call: result-cache hit
        client.healthz()
        families = parse_prometheus_text(client.metrics())
        requests = families["repro_http_requests_total"]
        query_hits = [value for name, labels, value
                      in requests["samples"]
                      if labels["path"] == "/query"
                      and labels["status"] == "200"
                      and labels["backend"] == backend]
        assert query_hits == [2.0]
        latency = families["repro_http_request_seconds"]
        counts = [value for name, labels, value in latency["samples"]
                  if name.endswith("_count")
                  and labels["path"] == "/query"]
        assert counts == [2.0]
        cache = {(labels["cache"], labels["outcome"]): value
                 for _name, labels, value
                 in families["repro_cache_requests_total"]["samples"]}
        assert cache[("result", "hit")] == 1.0
        assert cache[("result", "miss")] == 1.0
        assert families["repro_uptime_seconds"]["samples"][0][2] >= 0
        ((_n, build_labels, build_value),) = \
            families["repro_build_info"]["samples"]
        assert build_labels == {"version": repro.__version__}
        assert build_value == 1.0

    def test_scrape_does_not_count_itself_before_rendering(
            self, backend_client):
        _backend, client = backend_client
        parse_prometheus_text(client.metrics())   # must parse clean
        second = parse_prometheus_text(client.metrics())
        # The second scrape must observe the first one.
        metric_hits = [value for _name, labels, value
                       in second["repro_http_requests_total"]["samples"]
                       if labels["path"] == "/metrics"]
        assert metric_hits == [1.0]


class TestProfile:
    def test_profile_returns_span_tree(self, backend_client):
        _backend, client = backend_client
        response = client.query(QUERY, profile=True)
        tree = response["profile"]
        assert tree["name"] == "query"
        child_names = [child["name"] for child in tree["children"]]
        assert "parse" in child_names
        assert tree["duration_ms"] > 0
        # The result itself is unchanged by profiling.
        plain = client.query(QUERY, use_cache=False)
        assert response["result"] == plain["result"]
        assert "profile" not in plain

    def test_profile_bypasses_result_cache(self, backend_client):
        _backend, client = backend_client
        client.query(QUERY)                       # warm the cache
        profiled = client.query(QUERY, profile=True)
        assert profiled["cached"] is False
        assert "profile" in profiled
        cached = client.query(QUERY)
        assert cached["cached"] is True
        assert "profile" not in cached


class TestSlowQueryLog:
    def test_threshold_zero_logs_json_record(self, store, capsys):
        service = QueryService(store, slow_query_ms=0.0)
        response = service.query(QUERY)
        assert "profile" not in response          # log-only tracing
        record = json.loads(capsys.readouterr().err.strip()
                            .splitlines()[-1])
        assert record["event"] == "slow_query"
        assert record["query"] == QUERY
        assert record["elapsed_ms"] >= 0
        assert record["threshold_ms"] == 0.0
        assert record["profile"]["name"] == "query"

    def test_fast_queries_stay_quiet(self, store, capsys):
        service = QueryService(store, slow_query_ms=60_000.0)
        service.query(QUERY)
        assert capsys.readouterr().err == ""


class TestEndpointCanonicalisation:
    def test_known_paths_pass_through(self):
        assert canonical_endpoint("/query") == "/query"
        assert canonical_endpoint("/metrics") == "/metrics"

    def test_rule_ids_collapse(self):
        assert canonical_endpoint("/rules/abc-123") == "/rules/{id}"

    def test_unknown_paths_collapse_to_other(self):
        assert canonical_endpoint("/../../etc/passwd") == "other"
        assert canonical_endpoint("/query/extra") == "other"
