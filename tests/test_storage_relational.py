"""Unit tests for the relational (SQLite) storage backend."""

import pytest

from repro.audit.collector import AuditCollector
from repro.audit.entities import EntityType
from repro.errors import StorageError
from repro.storage.relational import RelationalStore
from repro.storage.relational.sqlgen import (comparison, in_list,
                                             like_escape)


@pytest.fixture()
def small_store():
    collector = AuditCollector()
    tar = collector.spawn_process("/bin/tar")
    collector.read_file(tar, "/etc/passwd", burst=2)
    collector.write_file(tar, "/tmp/upload.tar", burst=1)
    curl = collector.spawn_process("/usr/bin/curl")
    collector.connect_ip(curl, "192.168.29.128")
    store = RelationalStore()
    store.load_events(collector.events())
    yield store
    store.close()


class TestLoading:
    def test_counts(self, small_store):
        assert small_store.count_events() == 4
        # tar, passwd, upload.tar, curl, connection
        assert small_store.count_entities() == 5

    def test_entities_deduplicated(self, small_store):
        rows = small_store.execute(
            "SELECT COUNT(*) AS n FROM entities WHERE exename = '/bin/tar'")
        assert rows[0]["n"] == 1

    def test_entity_id_for_is_stable(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        store = RelationalStore()
        first = store.entity_id_for(tar)
        second = store.entity_id_for(tar)
        assert first == second
        store.close()

    def test_clear_resets(self, small_store):
        small_store.clear()
        assert small_store.count_events() == 0
        assert small_store.count_entities() == 0

    def test_on_disk_database(self, tmp_path):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/passwd")
        path = tmp_path / "audit.db"
        with RelationalStore(path) as store:
            store.load_events(collector.events())
            assert store.count_events() == 3
        assert path.exists()


class TestQuerying:
    def test_parameterized_query(self, small_store):
        rows = small_store.execute(
            "SELECT * FROM events WHERE operation = ?", ("connect",))
        assert len(rows) == 1

    def test_invalid_sql_raises_storage_error(self, small_store):
        with pytest.raises(StorageError):
            small_store.execute("SELECT * FROM not_a_table")

    def test_query_events_joins_entities(self, small_store):
        rows = small_store.query_events("o.name LIKE ?", ("%passwd%",))
        assert rows
        assert all(row["subject_exename"] == "/bin/tar" for row in rows)
        assert all(row["object_name"] == "/etc/passwd" for row in rows)

    def test_query_events_limit(self, small_store):
        rows = small_store.query_events(limit=1)
        assert len(rows) == 1

    def test_all_events_shape(self, small_store):
        rows = small_store.all_events()
        assert len(rows) == 4
        expected_keys = {"event_id", "operation", "subject_exename",
                         "object_name", "object_dstip", "start_time"}
        assert expected_keys <= set(rows[0].keys())

    def test_entities_matching_by_type(self, small_store):
        processes = small_store.entities_matching(EntityType.PROCESS)
        assert {row["exename"] for row in processes} == {"/bin/tar",
                                                         "/usr/bin/curl"}

    def test_entities_matching_with_filter(self, small_store):
        rows = small_store.entities_matching(
            EntityType.NETWORK, "dstip = ?", ("192.168.29.128",))
        assert len(rows) == 1

    def test_entity_by_id(self, small_store):
        row = small_store.entity_by_id(1)
        assert row is not None
        assert small_store.entity_by_id(10_000) is None

    def test_explain_returns_plan(self, small_store):
        plan = small_store.explain(
            "SELECT * FROM entities WHERE exename = ?", ("/bin/tar",))
        assert plan

    def test_indexes_exist(self, small_store):
        rows = small_store.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'")
        names = {row["name"] for row in rows}
        assert "idx_entities_exename" in names
        assert "idx_events_operation" in names


class TestSQLHelpers:
    def test_like_escape_escapes_underscore(self):
        assert like_escape("%drakon_loader%") == "%drakon\\_loader%"

    def test_comparison_wildcard_becomes_like(self):
        params = []
        clause = comparison("s.name", "=", "%/bin/tar%", params)
        assert "LIKE" in clause
        assert params == ["%/bin/tar%"]

    def test_comparison_negated_wildcard(self):
        params = []
        clause = comparison("s.name", "!=", "%/bin/tar%", params)
        assert "NOT LIKE" in clause

    def test_comparison_plain_equality(self):
        params = []
        clause = comparison("s.pid", "=", 42, params)
        assert clause == "s.pid = ?"
        assert params == [42]

    def test_comparison_unknown_operator(self):
        with pytest.raises(ValueError):
            comparison("s.pid", "~", 42, [])

    def test_in_list(self):
        params = []
        clause = in_list("e.operation", ["read", "write"], False, params)
        assert clause == "e.operation IN (?, ?)"
        assert params == ["read", "write"]

    def test_not_in_list(self):
        clause = in_list("e.operation", ["read"], True, [])
        assert "NOT IN" in clause
