"""Equivalence tests for the batched ingestion fast path.

The batched loader (streaming reduction, single build pass, chunked
``executemany``, bulk graph insertion) must populate both backends with data
*identical* to the retained row-at-a-time reference loader — same relational
rows, same graph nodes/edges/properties, same id assignment.
"""

import pytest

from repro.audit import AuditCollector, generate_benign_noise
from repro.storage import DualStore, IngestStats
from repro.storage.graph.graphdb import (graph_from_events,
                                         graph_from_events_itemwise)


@pytest.fixture(scope="module")
def noise_events():
    return generate_benign_noise(40, seed=7)


def _graphs_equal(left, right):
    assert left.num_nodes() == right.num_nodes()
    assert left.num_edges() == right.num_edges()
    for node_id in range(1, left.num_nodes() + 1):
        a, b = left.node(node_id), right.node(node_id)
        assert (a.label, a.properties) == (b.label, b.properties)
    for edge_id in range(1, left.num_edges() + 1):
        a, b = left.edge(edge_id), right.edge(edge_id)
        assert (a.source, a.target, a.label, a.properties) == \
               (b.source, b.target, b.label, b.properties)


class TestLoadStrategyEquivalence:
    @pytest.mark.parametrize("reduce", [True, False])
    def test_identical_backends(self, noise_events, reduce):
        with DualStore(reduce=reduce) as batched, \
                DualStore(reduce=reduce) as rowwise:
            count_batched = batched.load_events(noise_events,
                                                strategy="batched")
            count_rowwise = rowwise.load_events(noise_events,
                                                strategy="rowwise")
            assert int(count_batched) == int(count_rowwise)
            for sql in ("SELECT * FROM entities ORDER BY id",
                        "SELECT * FROM events ORDER BY id"):
                assert batched.execute_sql(sql) == rowwise.execute_sql(sql)
            _graphs_equal(batched.graph.graph, rowwise.graph.graph)
            assert [e.event_id for e in batched.events()] == \
                   [e.event_id for e in rowwise.events()]

    def test_reduction_stats_agree(self, noise_events):
        with DualStore() as batched, DualStore() as rowwise:
            batched.load_events(noise_events, strategy="batched")
            rowwise.load_events(noise_events, strategy="rowwise")
            assert batched.last_reduction.input_events == \
                rowwise.last_reduction.input_events
            assert batched.last_reduction.output_events == \
                rowwise.last_reduction.output_events
            assert batched.last_reduction.merged_events == \
                rowwise.last_reduction.merged_events

    def test_unknown_strategy_rejected(self, noise_events):
        with DualStore() as store:
            with pytest.raises(ValueError):
                store.load_events(noise_events, strategy="sideways")

    def test_reload_keeps_ids_aligned(self, noise_events):
        # Candidate pushdown relies on relational id == graph node id, and
        # the invariant must survive a second batched load.
        with DualStore() as store:
            store.load_events(noise_events)
            store.load_events(noise_events)
            rows = store.execute_sql(
                "SELECT id, type FROM entities ORDER BY id")
            for row in rows:
                node = store.graph.graph.node(row["id"])
                assert node.properties["type"] == row["type"]

    def test_incremental_relational_load_after_batched(self, noise_events):
        # adopt_entity_ids must leave the relational store ready for later
        # incremental loads: ids keep counting up, no collisions.
        collector = AuditCollector()
        proc = collector.spawn_process("/bin/late")
        collector.read_file(proc, "/tmp/late-file")
        with DualStore() as store:
            store.load_events(noise_events)
            before = store.relational.count_entities()
            store.relational.load_events(collector.events())
            after = store.relational.count_entities()
            assert after > before
            top = store.execute_sql(
                "SELECT COUNT(*) AS n, MAX(id) AS top FROM entities")[0]
            assert top["n"] == top["top"]  # dense, collision-free ids


class TestIngestStats:
    def test_int_compatible(self, noise_events):
        with DualStore() as store:
            stats = store.load_events(noise_events)
            assert isinstance(stats, IngestStats)
            assert isinstance(stats, int)
            assert stats == stats.events
            assert stats == store.statistics()["relational_events"]
            assert store.last_ingest is stats
            # The CLI prints the count through an f-string; the stats
            # object must render as a plain number there.
            assert f"{stats}" == str(int(stats))

    def test_breakdown_fields(self, noise_events):
        with DualStore() as store:
            stats = store.load_events(noise_events)
            assert stats.strategy == "batched"
            assert stats.input_events == len(noise_events)
            assert stats.events <= stats.input_events
            assert stats.entities == store.statistics()["graph_nodes"]
            assert stats.relational_batches >= 1
            assert set(stats.seconds) == {"reduce", "build", "relational",
                                          "graph"}
            assert stats.total_seconds == pytest.approx(
                sum(stats.seconds.values()))
            as_dict = stats.as_dict()
            assert as_dict["events"] == stats.events
            assert as_dict["strategy"] == "batched"

    def test_rowwise_stats(self, noise_events):
        with DualStore() as store:
            stats = store.load_events(noise_events, strategy="rowwise")
            assert stats.strategy == "rowwise"
            assert stats.entities == store.relational.count_entities()


class TestBulkGraphConstruction:
    def test_bulk_equals_itemwise(self, noise_events):
        _graphs_equal(graph_from_events(noise_events),
                      graph_from_events_itemwise(noise_events))

    def test_bulk_indexes_are_queryable(self, noise_events):
        bulk = graph_from_events(noise_events)
        itemwise = graph_from_events_itemwise(noise_events)
        probes = [("type", "proc"), ("type", "file")]
        sample = next(node for node in bulk.nodes()
                      if node.properties.get("path"))
        probes.append(("path", sample.properties["path"]))
        for key, value in probes:
            assert {n.node_id for n in bulk.nodes_with_property(key, value)} \
                == {n.node_id
                    for n in itemwise.nodes_with_property(key, value)}

    def test_clear_resets_everything(self, noise_events):
        graph = graph_from_events(noise_events)
        graph.clear()
        assert graph.num_nodes() == 0
        assert graph.num_edges() == 0
        assert list(graph.nodes()) == []
        assert graph.nodes_with_property("type", "proc") == []
        new_id = graph.add_node("proc", {"exename": "/bin/x"})
        assert new_id == 1  # id counters reset too


class TestIngestCLI:
    def test_ingest_stats_output(self, capsys, tmp_path, noise_events):
        from repro.audit.logfmt import format_log
        from repro.cli import main

        log_path = tmp_path / "audit.log"
        log_path.write_text(format_log(noise_events), encoding="utf-8")
        code = main(["ingest", "--log", str(log_path), "--stats"])
        captured = capsys.readouterr()
        assert code == 0
        assert "ingested" in captured.out
        assert "relational batches" in captured.out
        assert "reduce seconds" in captured.out
