"""Detection-engine tests: standing rules, watermarks, alerts, checkpoints.

Covers the standing-query guarantees — fire exactly once per matching
delta (deduplicated across flushes), fire only on *complete* matches,
event-time watermark semantics for ``last N`` windows including boundary
timestamps and out-of-order arrivals — plus the log tailer, the flush
policies, the reader/writer lock, and checkpoint-resume.
"""

from __future__ import annotations

import threading

import pytest

from repro.audit import AuditCollector, CollectorConfig
from repro.audit.entities import FileEntity, Operation, ProcessEntity, \
    SystemEvent
from repro.audit.logfmt import format_log
from repro.errors import StorageError, StreamingError, TBQLError
from repro.storage import DualStore
from repro.streaming import (AlertStore, DetectionEngine, FlushPolicy,
                             LogTailer, ReadWriteLock, StreamBatcher,
                             compile_rule, has_checkpoint,
                             load_rules_directory, read_stream_state,
                             resume_engine)

EXFIL_RULE = ('proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
              'proc q["%/usr/bin/curl%"] connect ip i as e2 '
              'with e1 before e2 return p, q, i.dstip')

READ_RULE = 'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 ' \
            'return p'

SEQUENCE_RULE = ('proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
                 'then proc q["%/usr/bin/curl%"] connect ip i '
                 'return p, q, i.dstip')


def _engine(reduce: bool = True, **kwargs) -> DetectionEngine:
    kwargs.setdefault("policy", FlushPolicy(max_events=1, max_seconds=0))
    return DetectionEngine(DualStore(reduce=reduce), **kwargs)


def _attack_batches():
    """The data-leak kernel in two deltas: read first, exfil later."""
    collector = AuditCollector(CollectorConfig(seed=5))
    tar = collector.spawn_process("/bin/tar")
    collector.read_file(tar, "/etc/passwd", burst=2)
    first = list(collector.events())
    collector.advance(10.0)
    curl = collector.spawn_process("/usr/bin/curl")
    collector.connect_ip(curl, "192.168.29.128")
    second = collector.events()[len(first):]
    return collector, first, second


def _event(proc, obj, operation, start, end=None, amount=1):
    return SystemEvent(subject=proc, operation=operation, obj=obj,
                       start_time=start,
                       end_time=end if end is not None else start,
                       data_amount=amount)


class TestStandingRules:
    def test_rule_fires_exactly_once_across_flushes(self):
        _collector, first, second = _attack_batches()
        engine = _engine()
        engine.add_rule(EXFIL_RULE, rule_id="exfil")
        reports = [engine.process_batch(first),
                   engine.process_batch(second), engine.finalize()]
        fired = sum(len(report.alerts) for report in reports)
        assert fired == 1
        assert engine.alerts.counters()["fired"] == 1
        # Benign follow-up flushes must not re-fire the same match.
        collector = AuditCollector(CollectorConfig(seed=77,
                                                   start_time=1.6e9))
        shell = collector.spawn_process("/bin/bash")
        collector.read_file(shell, "/var/log/syslog")
        engine.process_batch(collector.events())
        engine.finalize()
        assert engine.alerts.counters()["fired"] == 1

    def test_sequence_rule_fires_exactly_once_on_last_leg(self):
        """A 'then' rule fires when its *last* leg arrives, and only then.

        The first delta holds only the read leg — no alert.  The delta
        carrying the connect leg completes the sequence and fires exactly
        one alert; later flushes must not re-fire the same match.
        """
        _collector, first, second = _attack_batches()
        engine = _engine()
        engine.add_rule(SEQUENCE_RULE, rule_id="seq")
        first_report = engine.process_batch(first)
        assert first_report.alerts == []
        second_report = engine.process_batch(second)
        final = engine.finalize()
        fired = [alert for report in (second_report, final)
                 for alert in report.alerts]
        assert len(fired) == 1
        assert fired[0].rule_id == "seq"
        assert fired[0].rows[0]["i.dstip"] == "192.168.29.128"
        # A benign follow-up flush must not re-fire the sequence.
        collector = AuditCollector(CollectorConfig(seed=78,
                                                   start_time=1.7e9))
        shell = collector.spawn_process("/bin/bash")
        collector.read_file(shell, "/var/log/syslog")
        engine.process_batch(collector.events())
        engine.finalize()
        assert engine.alerts.counters()["fired"] == 1

    def test_partial_match_does_not_fire(self):
        _collector, first, _second = _attack_batches()
        engine = _engine()
        engine.add_rule(EXFIL_RULE)
        engine.process_batch(first)
        report = engine.finalize()
        # Only pattern e1 matched; the join is incomplete: no detection.
        assert not report.alerts
        assert engine.alerts.counters()["fired"] == 0

    def test_multi_pattern_match_spanning_batches_carries_provenance(self):
        _collector, first, second = _attack_batches()
        engine = _engine()
        engine.add_rule(EXFIL_RULE, rule_id="exfil")
        engine.process_batch(first)
        engine.process_batch(second)
        engine.finalize()
        (alert,) = engine.alerts.list()
        signatures = {(event["subject"], event["operation"],
                       event["object"]) for event in alert.matched_events}
        assert ("/bin/tar", "read", "/etc/passwd") in signatures
        assert ("/usr/bin/curl", "connect", "192.168.29.128") in signatures
        assert alert.rows      # the completed join's result rows
        assert alert.new_event_ids
        assert alert.rule_id == "exfil"

    def test_new_rule_retro_hunts_history(self):
        _collector, first, second = _attack_batches()
        engine = _engine()
        engine.process_batch(first)
        engine.process_batch(second)
        engine.finalize()
        assert engine.alerts.counters()["fired"] == 0   # no rules yet
        engine.add_rule(EXFIL_RULE)
        # The next flush evaluates the new rule over the whole history.
        collector = AuditCollector(CollectorConfig(seed=88,
                                                   start_time=1.7e9))
        shell = collector.spawn_process("/bin/sh")
        collector.read_file(shell, "/etc/hosts")
        engine.process_batch(collector.events())
        engine.finalize()
        assert engine.alerts.counters()["fired"] == 1

    def test_rule_management_errors(self):
        engine = _engine()
        engine.add_rule(READ_RULE, rule_id="r1")
        with pytest.raises(StreamingError):
            engine.add_rule(READ_RULE, rule_id="r1")
        with pytest.raises(TBQLError):
            engine.add_rule("not a query at all {")
        assert engine.remove_rule("r1").rule_id == "r1"
        with pytest.raises(StreamingError):
            engine.remove_rule("r1")

    def test_engine_requires_writable_store(self, tmp_path):
        with DualStore() as store:
            store.load_events([])
            store.save(tmp_path / "snap")
        snapshot = DualStore.open(tmp_path / "snap")
        try:
            with pytest.raises(StorageError):
                DetectionEngine(snapshot)
        finally:
            snapshot.close()


class TestWatermarks:
    def test_last_window_resolves_against_event_time(self):
        # Events are far in the past; a wall-clock "last 60 sec" would be
        # empty, but the watermark makes the window follow the data.
        proc = ProcessEntity(exename="/bin/tar", pid=44)
        passwd = FileEntity(path="/etc/passwd")
        engine = _engine(reduce=False)
        engine.add_rule('last 60 sec ' + READ_RULE, rule_id="windowed")
        report = engine.process_batch(
            [_event(proc, passwd, Operation.READ, 1000.0)])
        engine.finalize()
        assert engine.watermark == 1000.0
        assert len(report.alerts) == 1
        assert engine.alerts.counters()["fired"] == 1

    def test_boundary_timestamp_is_inside_the_window(self):
        proc = ProcessEntity(exename="/bin/tar", pid=45)
        passwd = FileEntity(path="/etc/passwd")
        other = ProcessEntity(exename="/bin/sleep", pid=46)
        clock = FileEntity(path="/tmp/clock")
        engine = _engine(reduce=False)
        engine.add_rule('last 60 sec ' + READ_RULE)
        # Boundary event: starts exactly at watermark - 60.
        engine.process_batch([
            _event(proc, passwd, Operation.READ, 940.0),
            _event(other, clock, Operation.READ, 1000.0),
        ])
        engine.finalize()
        assert engine.watermark == 1000.0
        assert engine.alerts.counters()["fired"] == 1

    def test_event_older_than_window_does_not_fire(self):
        proc = ProcessEntity(exename="/bin/tar", pid=47)
        passwd = FileEntity(path="/etc/passwd")
        other = ProcessEntity(exename="/bin/sleep", pid=48)
        clock = FileEntity(path="/tmp/clock")
        engine = _engine(reduce=False)
        engine.add_rule('last 60 sec ' + READ_RULE)
        engine.process_batch([
            _event(proc, passwd, Operation.READ, 939.0),   # just outside
            _event(other, clock, Operation.READ, 1000.0),
        ])
        engine.finalize()
        assert engine.alerts.counters()["fired"] == 0

    def test_out_of_order_event_is_stored_and_counted(self):
        proc = ProcessEntity(exename="/bin/tar", pid=49)
        passwd = FileEntity(path="/etc/passwd")
        other = ProcessEntity(exename="/bin/sleep", pid=50)
        clock = FileEntity(path="/tmp/clock")
        engine = _engine(reduce=False)
        engine.add_rule(READ_RULE)
        engine.process_batch([_event(other, clock, Operation.READ, 1000.0)])
        # A late event arrives with an older timestamp than the watermark.
        engine.process_batch([_event(proc, passwd, Operation.READ, 900.0)])
        engine.finalize()
        assert engine.out_of_order == 1
        assert engine.watermark == 1000.0    # never regresses
        assert engine.alerts.counters()["fired"] == 1

    def test_overlapping_in_order_events_are_not_counted_late(self):
        # A long-running event's end_time exceeds later start_times on a
        # perfectly ordered stream; that must not inflate out_of_order.
        proc = ProcessEntity(exename="/bin/x", pid=54)
        target = FileEntity(path="/tmp/t")
        engine = _engine(reduce=False)
        engine.process_batch([_event(proc, target, Operation.READ, 0.0,
                                     end=100.0)])
        engine.process_batch([_event(proc, target, Operation.WRITE, 50.0,
                                     end=150.0)])
        assert engine.out_of_order == 0
        assert engine.watermark == 150.0
        assert engine.max_start_time == 50.0

    def test_watermark_advances_monotonically(self):
        proc = ProcessEntity(exename="/bin/x", pid=51)
        target = FileEntity(path="/tmp/t")
        engine = _engine(reduce=False)
        engine.process_batch([_event(proc, target, Operation.READ, 10.0,
                                     end=12.0)])
        assert engine.watermark == 12.0
        engine.process_batch([_event(proc, target, Operation.WRITE, 11.0)])
        assert engine.watermark == 12.0
        engine.process_batch([_event(proc, target, Operation.WRITE, 20.0)])
        assert engine.watermark == 20.0


class TestAlertStore:
    def test_capacity_bound_drops_oldest(self):
        store = AlertStore(capacity=2)
        for index in range(3):
            assert store.fire(rule_id=f"r{index}", query="q", batch_seq=1,
                              data_version=1, watermark=0.0,
                              new_event_ids=[index], matched_events=[],
                              rows=[]) is not None
        counters = store.counters()
        assert counters["fired"] == 3
        assert counters["dropped"] == 1
        assert [alert.rule_id for alert in store.list()] == ["r1", "r2"]

    def test_signature_dedup_suppresses_replay(self):
        store = AlertStore()
        kwargs = dict(rule_id="r", query="q", batch_seq=1, data_version=1,
                      watermark=0.0, new_event_ids=[7, 9],
                      matched_events=[], rows=[])
        assert store.fire(**kwargs) is not None
        assert store.fire(**kwargs) is None
        assert store.counters()["suppressed"] == 1

    def test_since_id_cursor(self):
        store = AlertStore()
        for index in range(4):
            store.fire(rule_id="r", query="q", batch_seq=index,
                       data_version=1, watermark=0.0,
                       new_event_ids=[index], matched_events=[], rows=[])
        newer = store.list(since_id=2)
        assert [alert.alert_id for alert in newer] == [3, 4]
        assert len(store.list(since_id=0, limit=1)) == 1


class TestTailerAndBatcher:
    def test_tailer_reads_only_complete_lines(self, tmp_path):
        collector = AuditCollector(CollectorConfig(seed=9))
        shell = collector.spawn_process("/bin/bash")
        collector.read_file(shell, "/etc/hosts")
        lines = format_log(collector.events()).splitlines(keepends=True)
        log = tmp_path / "audit.log"
        tailer = LogTailer(log)
        assert tailer.poll_events() == []           # file does not exist yet
        log.write_text("".join(lines[:1]), encoding="utf-8")
        first = tailer.poll_events()
        assert len(first) == 1
        # Append one full line plus a partial one: only the complete line
        # is consumed; the offset stays before the partial tail.
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(lines[1])
            handle.write(lines[2][: len(lines[2]) // 2])
        second = tailer.poll_events()
        assert len(second) == 1
        offset_before = tailer.offset
        with open(log, "a", encoding="utf-8") as handle:
            handle.write(lines[2][len(lines[2]) // 2:])
        third = tailer.poll_events()
        assert len(third) == 1
        assert tailer.offset > offset_before

    def test_tailer_handles_truncation(self, tmp_path):
        collector = AuditCollector(CollectorConfig(seed=9))
        shell = collector.spawn_process("/bin/bash")
        collector.read_file(shell, "/etc/hosts")
        text = format_log(collector.events())
        log = tmp_path / "audit.log"
        log.write_text(text, encoding="utf-8")
        tailer = LogTailer(log)
        assert tailer.poll_events()
        log.write_text(text.splitlines(keepends=True)[0], encoding="utf-8")
        assert tailer.poll_events()     # restarted from the beginning
        assert tailer.truncations == 1

    def test_tailer_bounded_polls_drain_a_backlog(self, tmp_path):
        collector = AuditCollector(CollectorConfig(seed=9))
        shell = collector.spawn_process("/bin/bash")
        for index in range(8):
            collector.advance(3.0)
            collector.read_file(shell, f"/tmp/backlog_{index}")
        text = format_log(collector.events())
        log = tmp_path / "audit.log"
        log.write_text(text, encoding="utf-8")
        line_bytes = len(text.splitlines(keepends=True)[0])
        # A bound of ~2 lines forces multiple polls over the backlog.
        tailer = LogTailer(log, max_poll_bytes=2 * line_bytes)
        polls = 0
        total = 0
        while True:
            events = tailer.poll_events()
            if not events:
                break
            assert len(events) <= 3
            total += len(events)
            polls += 1
        assert polls > 1
        assert total == len(collector.events())
        assert tailer.offset == len(text.encode("utf-8"))

    def test_batcher_size_and_time_triggers(self):
        clock = [0.0]
        batcher = StreamBatcher(FlushPolicy(max_events=3, max_seconds=5.0),
                                clock=lambda: clock[0])
        proc = ProcessEntity(exename="/bin/x", pid=52)
        target = FileEntity(path="/tmp/t")
        events = [_event(proc, target, Operation.READ, float(i))
                  for i in range(3)]
        batcher.add(events[:2])
        assert not batcher.should_flush
        clock[0] = 6.0
        assert batcher.should_flush          # time trigger
        drained = batcher.drain()
        assert len(drained) == 2
        batcher.add(events)
        assert batcher.should_flush          # size trigger
        assert [e.start_time for e in batcher.drain()] == [0.0, 1.0, 2.0]

    def test_follow_once_drains_seals_and_alerts(self, tmp_path):
        collector, first, second = _attack_batches()
        log = tmp_path / "audit.log"
        log.write_text(format_log(first + second), encoding="utf-8")
        engine = _engine()
        engine.add_rule(EXFIL_RULE)
        reports = []
        stored = engine.follow(LogTailer(log), once=True,
                               on_flush=reports.append)
        assert stored == engine.events_stored > 0
        assert engine.alerts.counters()["fired"] == 1
        assert any(report.alerts for report in reports)


class TestCheckpointResume:
    def test_checkpoint_roundtrip_state(self, tmp_path):
        _collector, first, second = _attack_batches()
        engine = _engine()
        engine.add_rule(EXFIL_RULE, rule_id="exfil")
        engine.process_batch(first)
        engine.process_batch(second)
        engine.finalize()
        target = tmp_path / "ckpt"
        state = engine.checkpoint(target)
        assert has_checkpoint(target)
        loaded = read_stream_state(target)
        assert loaded["batch_seq"] == state["batch_seq"]
        assert loaded["rules"][0]["id"] == "exfil"
        assert loaded["rules"][0]["high_water_event_id"] > 0

    def test_resume_does_not_refire_but_detects_new_matches(self,
                                                            tmp_path):
        collector, first, second = _attack_batches()
        engine = _engine()
        engine.add_rule(EXFIL_RULE, rule_id="exfil")
        engine.process_batch(first)
        engine.process_batch(second)
        engine.finalize()
        assert engine.alerts.counters()["fired"] == 1
        target = tmp_path / "ckpt"
        engine.checkpoint(target)
        engine.store.close()

        resumed = resume_engine(
            target, policy=FlushPolicy(max_events=1, max_seconds=0))
        try:
            assert resumed.watermark == engine.watermark
            assert resumed.batch_seq == engine.batch_seq
            # Replaying nothing: a benign flush does not re-fire history.
            benign = AuditCollector(CollectorConfig(seed=99,
                                                    start_time=1.8e9))
            shell = benign.spawn_process("/bin/bash")
            benign.read_file(shell, "/var/log/syslog")
            resumed.process_batch(benign.events())
            resumed.finalize()
            assert resumed.alerts.counters()["fired"] == 0
            # A new connect joins the pre-checkpoint read: fires once.
            known = collector.events()
            curl = benign.spawn_process("/usr/bin/curl")
            benign.connect_ip(curl, "10.0.0.99")
            fresh = benign.events()[len(benign.events()) - 2:]
            del known
            resumed.process_batch(fresh)
            resumed.finalize()
            assert resumed.alerts.counters()["fired"] == 1
        finally:
            resumed.store.close()

    def test_checkpoint_overwrite_is_atomic_and_crash_recoverable(
            self, tmp_path):
        import os
        _collector, first, second = _attack_batches()
        engine = _engine()
        engine.add_rule(EXFIL_RULE, rule_id="exfil")
        engine.process_batch(first)
        target = tmp_path / "ckpt"
        engine.checkpoint(target)
        engine.process_batch(second)
        engine.finalize()
        engine.checkpoint(target)           # overwrite in place
        assert not target.with_name("ckpt.tmp").exists()
        assert not target.with_name("ckpt.old").exists()
        # Simulate a crash between the two swap renames: the new dir is
        # gone, the previous checkpoint is parked at <dir>.old.
        os.replace(target, target.with_name("ckpt.old"))
        assert has_checkpoint(target)       # recovery restores it
        resumed = resume_engine(
            target, policy=FlushPolicy(max_events=1, max_seconds=0))
        try:
            assert resumed.batch_seq == engine.batch_seq
        finally:
            resumed.store.close()

    def test_periodic_checkpointing(self, tmp_path):
        proc = ProcessEntity(exename="/bin/x", pid=53)
        target = FileEntity(path="/tmp/t")
        engine = DetectionEngine(
            DualStore(reduce=False),
            policy=FlushPolicy(max_events=1, max_seconds=0),
            checkpoint_dir=tmp_path / "auto", checkpoint_every=2)
        for index in range(5):
            engine.process_batch(
                [_event(proc, target, Operation.READ, float(index * 10))])
        assert engine.checkpoints >= 2
        assert has_checkpoint(tmp_path / "auto")


class TestRuleFiles:
    def test_load_rules_directory(self, tmp_path):
        (tmp_path / "a.tbql").write_text(READ_RULE, encoding="utf-8")
        (tmp_path / "b.tbql").write_text("definitely ! invalid",
                                         encoding="utf-8")
        entries = load_rules_directory(tmp_path)
        assert [entry[0] for entry in entries] == ["a", "b"]
        # Valid entry: compiled rule, no error (registerable as-is).
        assert entries[0][2] is not None and entries[0][3] is None
        assert entries[1][2] is None and entries[1][3] is not None
        engine = _engine()
        engine.rules.add_compiled(entries[0][2])
        assert engine.rules.get("a") is entries[0][2]
        with pytest.raises(StreamingError):
            engine.rules.add_compiled(entries[0][2])
        with pytest.raises(StreamingError):
            load_rules_directory(tmp_path / "missing")

    def test_prune_removes_rules_whose_file_was_deleted(self, tmp_path):
        from repro.cli import _load_rules_into
        (tmp_path / "keep.tbql").write_text(READ_RULE, encoding="utf-8")
        engine = _engine()
        # Simulate a checkpoint-restored rule whose file no longer exists.
        engine.add_rule(EXFIL_RULE, rule_id="deleted-on-disk")
        engine.add_rule(READ_RULE, rule_id="keep",
                        high_water_event_id=7)
        loaded = _load_rules_into(engine, str(tmp_path), prune=True)
        assert loaded == 1
        ids = [rule.rule_id for rule in engine.rules.list()]
        assert ids == ["keep"]
        # Unchanged text keeps the restored high-water mark.
        assert engine.rules.get("keep").high_water_event_id == 7

    def test_compile_rule_classifies_time_dependence(self):
        static = compile_rule(READ_RULE, "s")
        windowed = compile_rule("last 5 min " + READ_RULE, "w")
        assert not static.time_dependent
        assert static.resolved is not None
        assert windowed.time_dependent
        assert windowed.resolved is None


class TestReadWriteLock:
    def test_readers_share_writers_exclude(self):
        lock = ReadWriteLock()
        active = {"readers": 0, "writer": False}
        peak = {"readers": 0}
        errors = []
        barrier = threading.Barrier(4)

        def reader():
            barrier.wait()
            for _ in range(50):
                with lock.read_lock():
                    if active["writer"]:
                        errors.append("reader saw writer")
                    active["readers"] += 1
                    peak["readers"] = max(peak["readers"],
                                          active["readers"])
                    active["readers"] -= 1

        def writer():
            barrier.wait()
            for _ in range(50):
                with lock.write_lock():
                    if active["readers"] or active["writer"]:
                        errors.append("writer not exclusive")
                    active["writer"] = True
                    active["writer"] = False

        threads = [threading.Thread(target=reader) for _ in range(3)] + \
            [threading.Thread(target=writer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
