"""Unit tests for the synthetic collector and the benign workload generator."""

import pytest

from repro.audit.collector import AuditCollector
from repro.audit.entities import EntityType, Operation
from repro.audit.syscalls import (SYSCALL_TABLE, event_category_of,
                                  is_monitored, lookup_syscall, syscall_for)
from repro.audit.workload import (BenignWorkloadGenerator, WorkloadConfig,
                                  generate_benign_noise)


class TestSyscallTable:
    def test_table_covers_paper_calls(self):
        for name in ("read", "write", "execve", "fork", "clone", "recvfrom",
                     "sendto", "rename"):
            assert is_monitored(name)

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            lookup_syscall("not_a_syscall")

    def test_reverse_mapping_roundtrips(self):
        name = syscall_for(Operation.READ, EntityType.FILE)
        spec = lookup_syscall(name)
        assert spec.operation is Operation.READ
        assert spec.object_type is EntityType.FILE

    def test_network_read_maps_to_recv(self):
        assert syscall_for(Operation.READ, EntityType.NETWORK) == "recvfrom"
        assert syscall_for(Operation.WRITE, EntityType.NETWORK) == "sendto"

    def test_event_category(self):
        assert event_category_of("connect") is EntityType.NETWORK
        assert event_category_of("execve") is EntityType.PROCESS

    def test_every_entry_consistent(self):
        for name, spec in SYSCALL_TABLE.items():
            assert spec.name == name


class TestAuditCollector:
    def test_clock_advances_monotonically(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        before = collector.now
        collector.read_file(tar, "/etc/passwd")
        assert collector.now > before

    def test_advance_rejects_negative(self):
        with pytest.raises(ValueError):
            AuditCollector().advance(-1)

    def test_burst_produces_multiple_records(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        events = collector.read_file(tar, "/etc/passwd", burst=5)
        assert len(events) == 5
        assert all(event.operation is Operation.READ for event in events)

    def test_burst_ignored_for_control_operations(self):
        collector = AuditCollector()
        bash = collector.spawn_process("/bin/bash")
        events = collector.connect_ip(bash, "1.2.3.4", burst=7)
        assert len(events) == 1

    def test_invalid_burst_rejected(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        with pytest.raises(ValueError):
            collector.read_file(tar, "/etc/passwd", burst=0)

    def test_spawn_process_reuses_same_pid_for_same_key(self):
        collector = AuditCollector()
        first = collector.spawn_process("/bin/bash", pid=500)
        second = collector.spawn_process("/bin/bash", pid=500)
        assert first is second

    def test_start_process_creates_child(self):
        collector = AuditCollector()
        bash = collector.spawn_process("/bin/bash")
        child, events = collector.start_process(bash, "/usr/bin/python3")
        assert child.exename == "/usr/bin/python3"
        assert events[0].operation is Operation.START

    def test_file_name_is_full_path(self):
        collector = AuditCollector()
        entity = collector.file("/etc/passwd")
        assert entity.name == "/etc/passwd"

    def test_data_amount_split_across_burst(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        events = collector.read_file(tar, "/etc/passwd", burst=4,
                                     data_amount=4000)
        assert all(event.data_amount == 1000 for event in events)

    def test_to_log_and_clear(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/passwd")
        assert collector.to_log().strip()
        assert len(collector) > 0
        collector.clear()
        assert len(collector) == 0

    def test_events_sorted(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/a")
        collector.read_file(tar, "/etc/b")
        events = collector.events()
        assert events == sorted(events, key=lambda e: (e.start_time,
                                                       e.event_id))


class TestBenignWorkload:
    def test_deterministic_for_same_seed(self):
        first = generate_benign_noise(num_sessions=10, seed=5)
        second = generate_benign_noise(num_sessions=10, seed=5)
        first_sig = [(e.subject.exename, e.operation, e.start_time)
                     for e in first]
        second_sig = [(e.subject.exename, e.operation, e.start_time)
                      for e in second]
        assert first_sig == second_sig

    def test_different_seeds_differ(self):
        first = generate_benign_noise(num_sessions=10, seed=5)
        second = generate_benign_noise(num_sessions=10, seed=6)
        assert [(e.subject.exename, e.operation) for e in first] != \
            [(e.subject.exename, e.operation) for e in second]

    def test_more_sessions_more_events(self):
        small = generate_benign_noise(num_sessions=5, seed=1)
        large = generate_benign_noise(num_sessions=50, seed=1)
        assert len(large) > len(small)

    def test_generates_varied_activity(self):
        events = generate_benign_noise(num_sessions=40, seed=3)
        operations = {event.operation for event in events}
        assert Operation.READ in operations
        assert Operation.WRITE in operations
        categories = {event.category.value for event in events}
        assert "network_event" in categories or "process_event" in categories

    def test_generate_log_text_parses(self):
        from repro.audit.parser import parse_audit_log
        generator = BenignWorkloadGenerator(WorkloadConfig(num_sessions=5,
                                                           seed=2))
        events = parse_audit_log(generator.generate_log())
        assert events
