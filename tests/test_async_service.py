"""Asyncio front-end tests: keep-alive, backpressure, drain, hygiene.

The shared endpoint/correctness suite already runs against both backends
(``tests/test_service.py`` and ``tests/test_streaming_service.py`` are
parametrized over them); this file covers what is *specific* to the
asyncio server — admission-queue backpressure (429 + ``Retry-After``,
never a hang or a 500), the ingest lane that cannot starve queries,
single-connection keep-alive reuse, graceful-shutdown drain of in-flight
requests, read timeouts — plus the request-hygiene answers (413/400/411)
both backends must give.
"""

from __future__ import annotations

import json
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import ServiceError
from repro.service import (AsyncThreatHuntingServer, QueryService,
                           ServiceClient, run_load)
from repro.storage import DualStore
from repro.streaming import DetectionEngine, FlushPolicy

from .conftest import (SERVER_BACKENDS, start_backend_server,
                       stop_backend_server)
from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS

QUERY = 'proc p["%/bin/tar%"] read file f as e1 return distinct f'


def _start_async(service, **kwargs):
    server = AsyncThreatHuntingServer(("127.0.0.1", 0), service, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    assert server.wait_ready(10)
    return server, thread


@pytest.fixture()
def store(data_leak_events):
    with DualStore() as store:
        store.load_events(data_leak_events)
        yield store


class TestKeepAlive:
    def test_request_train_reuses_one_connection(self, store):
        service = QueryService(store)
        server, thread = _start_async(service)
        host, port = server.server_address[:2]
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                for _ in range(8):
                    assert client.healthz()["status"] == "ok"
                client.query(QUERY)
            assert server.connections_accepted == 1
            assert server.requests_served == 9
        finally:
            stop_backend_server(server, thread)

    def test_client_reconnects_after_server_side_close(self, store):
        # An idle connection the read timeout reaped must be replaced
        # transparently on the next call, not surface as an error.
        service = QueryService(store)
        server, thread = _start_async(service, read_timeout=0.3)
        host, port = server.server_address[:2]
        try:
            with ServiceClient(f"http://{host}:{port}") as client:
                assert client.healthz()["status"] == "ok"
                time.sleep(0.8)   # let the server reap the idle socket
                assert client.healthz()["status"] == "ok"
            assert server.connections_accepted == 2
        finally:
            stop_backend_server(server, thread)

    def test_load_generator_round_trip(self, store):
        service = QueryService(store)
        server, thread = _start_async(service)
        host, port = server.server_address[:2]
        try:
            result = run_load(host, port, EQUIVALENCE_CORPUS[:4],
                              clients=8, requests_per_client=6)
            assert result.errors == 0
            assert result.statuses == {200: 48}
            assert result.qps > 0 and result.p99_ms >= result.p50_ms
            assert server.connections_accepted == 8
        finally:
            stop_backend_server(server, thread)


class TestBackpressure:
    def test_full_queue_answers_429_with_retry_after(self, store,
                                                     monkeypatch):
        service = QueryService(store)
        release = threading.Event()
        original = QueryService.query

        def slow_query(self, text, use_cache=True, **kwargs):
            release.wait(10)
            return original(self, text, use_cache=use_cache, **kwargs)

        monkeypatch.setattr(QueryService, "query", slow_query)
        server, thread = _start_async(service, exec_threads=1,
                                      queue_limit=1)
        host, port = server.server_address[:2]
        try:
            base = f"http://{host}:{port}"
            outcomes: list[object] = []

            def fire():
                with ServiceClient(base, timeout=30) as client:
                    try:
                        outcomes.append(client.query(QUERY)["result"])
                    except ServiceError as exc:
                        outcomes.append(exc)

            # Capacity is 1 executing + 1 queued; the rest must be
            # rejected immediately — not hang, not 500.
            threads = [threading.Thread(target=fire) for _ in range(6)]
            for worker in threads:
                worker.start()
            deadline = time.monotonic() + 10
            while server.rejected_busy < 4 \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            release.set()
            for worker in threads:
                worker.join(timeout=15)
            assert not any(worker.is_alive() for worker in threads)
            rejected = [outcome for outcome in outcomes
                        if isinstance(outcome, ServiceError)]
            served = [outcome for outcome in outcomes
                      if not isinstance(outcome, ServiceError)]
            assert len(served) == 2 and len(rejected) == 4
            for error in rejected:
                assert error.status == 429
                assert error.retry_after is not None \
                    and error.retry_after > 0
            # The lane recovered: the next request is served normally.
            with ServiceClient(base) as client:
                assert client.query(QUERY)["result"]["rows"]
            assert server.stats()["lanes"]["query"]["rejected"] == 4
        finally:
            release.set()
            stop_backend_server(server, thread)

    def test_saturated_ingest_lane_does_not_starve_queries(self,
                                                           monkeypatch):
        store = DualStore()
        engine = DetectionEngine(store, policy=FlushPolicy(max_events=1,
                                                           max_seconds=0))
        service = QueryService(store, engine=engine)
        release = threading.Event()

        def slow_ingest(self, log_text, seal=True):
            release.wait(10)
            return {"stored": 0, "malformed": 0, "alerts": [],
                    "watermark": None}

        monkeypatch.setattr(QueryService, "ingest", slow_ingest)
        server, thread = _start_async(service, exec_threads=2,
                                      queue_limit=4)
        host, port = server.server_address[:2]
        try:
            base = f"http://{host}:{port}"
            ingest_errors: list[ServiceError] = []

            def chatty_ingest():
                with ServiceClient(base, timeout=30) as client:
                    try:
                        client.ingest("type=NOISE")
                    except ServiceError as exc:
                        ingest_errors.append(exc)

            writers = [threading.Thread(target=chatty_ingest)
                       for _ in range(8)]
            for worker in writers:
                worker.start()
            # Wait until the ingest lane is saturated (1 executing slot
            # for exec_threads=2, 2 queued for queue_limit=4, rest 429).
            deadline = time.monotonic() + 10
            while server.stats()["lanes"]["ingest"]["rejected"] < 5 \
                    and time.monotonic() < deadline:
                time.sleep(0.01)
            # Queries still go through: the ingest lane can never take
            # more than half the executor threads.
            started = time.monotonic()
            with ServiceClient(base, timeout=30) as client:
                response = client.query(QUERY, use_cache=False)
            assert response["result"] is not None
            assert time.monotonic() - started < 5
            release.set()
            for worker in writers:
                worker.join(timeout=15)
            assert not any(worker.is_alive() for worker in writers)
            assert all(error.status == 429 for error in ingest_errors)
            assert len(ingest_errors) == 5
        finally:
            release.set()
            stop_backend_server(server, thread)
            store.close()


class TestRequestHygiene:
    @pytest.mark.parametrize("backend", SERVER_BACKENDS)
    def test_oversized_body_is_413(self, store, backend):
        service = QueryService(store)
        server, thread = start_backend_server(service, backend,
                                              max_body_bytes=1024)
        host, port = server.server_address[:2]
        try:
            client = ServiceClient(f"http://{host}:{port}")
            big = "x" * 4096
            with pytest.raises(ServiceError) as excinfo:
                client._post("/query", {"tbql": big})
            assert excinfo.value.status == 413
            # The connection was closed by the server; a fresh request
            # still works (transparent reconnect).
            assert client.healthz()["status"] == "ok"
            client.close()
        finally:
            stop_backend_server(server, thread)

    @pytest.mark.parametrize("backend", SERVER_BACKENDS)
    def test_malformed_json_is_structured_400(self, store, backend):
        service = QueryService(store)
        server, thread = start_backend_server(service, backend)
        host, port = server.server_address[:2]
        try:
            for raw in (b"{not json", b"[1, 2, 3]", b""):
                with socket.create_connection((host, port),
                                              timeout=10) as sock:
                    head = (f"POST /query HTTP/1.1\r\n"
                            f"Host: {host}:{port}\r\n"
                            f"Content-Type: application/json\r\n"
                            f"Content-Length: {len(raw)}\r\n"
                            f"Connection: close\r\n\r\n").encode()
                    sock.sendall(head + raw)
                    response = _read_all(sock)
                status, body = _split_response(response)
                assert status == 400
                assert "error" in json.loads(body)
        finally:
            stop_backend_server(server, thread)

    def test_chunked_transfer_is_rejected(self, store):
        service = QueryService(store)
        server, thread = _start_async(service)
        host, port = server.server_address[:2]
        try:
            with socket.create_connection((host, port),
                                          timeout=10) as sock:
                sock.sendall(b"POST /query HTTP/1.1\r\n"
                             b"Host: x\r\n"
                             b"Transfer-Encoding: chunked\r\n\r\n")
                response = _read_all(sock)
            status, _body = _split_response(response)
            assert status == 411
        finally:
            stop_backend_server(server, thread)

    def test_read_timeout_reaps_silent_connection(self, store):
        service = QueryService(store)
        server, thread = _start_async(service, read_timeout=0.3)
        host, port = server.server_address[:2]
        try:
            with socket.create_connection((host, port),
                                          timeout=10) as sock:
                sock.settimeout(5)
                started = time.monotonic()
                assert sock.recv(1) == b""   # EOF: server closed it
                assert time.monotonic() - started < 4
        finally:
            stop_backend_server(server, thread)


class TestGracefulShutdown:
    def test_drain_completes_in_flight_request(self, store, monkeypatch):
        service = QueryService(store)
        original = QueryService.query
        entered = threading.Event()

        def slow_query(self, text, use_cache=True, **kwargs):
            entered.set()
            time.sleep(0.5)
            return original(self, text, use_cache=use_cache, **kwargs)

        monkeypatch.setattr(QueryService, "query", slow_query)
        server, thread = _start_async(service)
        host, port = server.server_address[:2]
        outcome: dict = {}

        def fire():
            with ServiceClient(f"http://{host}:{port}",
                               timeout=30) as client:
                outcome["response"] = client.query(QUERY)

        requester = threading.Thread(target=fire)
        requester.start()
        assert entered.wait(10)
        # Shutdown while the request is executing: it must be answered
        # 200 before the server stops, not dropped.
        assert server.shutdown_gracefully(drain_timeout=15) is True
        requester.join(timeout=15)
        assert not requester.is_alive()
        assert outcome["response"]["result"]["rows"]
        server.server_close()
        thread.join(timeout=10)
        assert not thread.is_alive()

    @pytest.mark.parametrize("backend", SERVER_BACKENDS)
    def test_shutdown_gracefully_idempotent_when_idle(self, store,
                                                      backend):
        service = QueryService(store)
        server, thread = start_backend_server(service, backend)
        host, port = server.server_address[:2]
        with ServiceClient(f"http://{host}:{port}") as client:
            assert client.healthz()["status"] == "ok"
        assert server.shutdown_gracefully() is True
        server.server_close()
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestConcurrentEquivalence:
    def test_concurrent_equals_serial_byte_for_byte(self, store):
        # The asyncio-specific replay of the flagship guarantee: many
        # threads hammering the bounded executor still observe exactly
        # the single-threaded payloads.
        service = QueryService(store)
        server, thread = _start_async(service, exec_threads=4)
        host, port = server.server_address[:2]
        try:
            base = f"http://{host}:{port}"
            with ServiceClient(base) as client:
                serial = {
                    text: json.dumps(
                        client.query(text, use_cache=False)["result"],
                        sort_keys=True)
                    for text in EQUIVALENCE_CORPUS
                }

            def run(index):
                text = EQUIVALENCE_CORPUS[index % len(EQUIVALENCE_CORPUS)]
                with ServiceClient(base) as client:
                    response = client.query(text, use_cache=False)
                return text, json.dumps(response["result"],
                                        sort_keys=True)

            with ThreadPoolExecutor(max_workers=8) as pool:
                outcomes = list(pool.map(
                    run, range(3 * len(EQUIVALENCE_CORPUS))))
            for text, payload in outcomes:
                assert payload == serial[text]
        finally:
            stop_backend_server(server, thread)


def _read_all(sock: socket.socket) -> bytes:
    chunks = []
    while True:
        try:
            chunk = sock.recv(65536)
        except (ConnectionResetError, socket.timeout):
            break
        if not chunk:
            break
        chunks.append(chunk)
    return b"".join(chunks)


def _split_response(raw: bytes) -> tuple[int, bytes]:
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(None, 2)[1])
    return status, body
