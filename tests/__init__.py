"""Test package marker.

The test modules import shared fixtures with ``from .conftest import ...``,
which requires the directory to be a real package; without this file pytest
collection dies with ``attempted relative import with no known parent
package``.
"""
