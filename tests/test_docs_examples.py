"""Compile-check every ```tbql code block in docs/ and README.md.

Documentation drifts unless it is executed: each fenced ``tbql`` block
must parse through the real lexer/parser and resolve through the real
semantic pass, so a language change that invalidates an example fails
CI instead of silently rotting the docs.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import resolve_query

REPO_ROOT = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"```tbql\n(.*?)```", re.DOTALL)


def _doc_files() -> list[Path]:
    files = [REPO_ROOT / "README.md"]
    files.extend(sorted((REPO_ROOT / "docs").glob("*.md")))
    return [path for path in files if path.exists()]


def _blocks() -> list[tuple[str, str]]:
    found = []
    for path in _doc_files():
        text = path.read_text(encoding="utf-8")
        for index, match in enumerate(_FENCE.finditer(text), start=1):
            name = f"{path.relative_to(REPO_ROOT)}#{index}"
            found.append((name, match.group(1)))
    return found


DOC_BLOCKS = _blocks()


def test_docs_exist_and_carry_examples():
    assert (REPO_ROOT / "docs" / "tbql.md").exists()
    assert (REPO_ROOT / "docs" / "architecture.md").exists()
    assert (REPO_ROOT / "docs" / "operations.md").exists()
    # The language reference must demonstrate every operator family.
    sources = "\n".join(block for _name, block in DOC_BLOCKS)
    assert "then" in sources
    assert "and not" in sources
    assert "count()" in sources
    assert len(DOC_BLOCKS) >= 10


@pytest.mark.parametrize(
    "name,source", DOC_BLOCKS, ids=[name for name, _ in DOC_BLOCKS])
def test_tbql_block_compiles(name, source):
    query = parse_tbql(source)
    # Resolution runs with a pinned clock so `last N unit` examples
    # compile deterministically.
    resolved = resolve_query(query, now=1.6e9)
    assert resolved.patterns
