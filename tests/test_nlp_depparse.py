"""Unit tests for the rule-based dependency parser."""

from repro.nlp.depparse import RuleDependencyParser


def parse(sentence):
    return RuleDependencyParser().parse(sentence)


def rel_of(tree, word):
    for node in tree.nodes:
        if node.text == word:
            return node.deprel
    raise AssertionError(f"{word!r} not in tree")


def head_of(tree, word):
    for node in tree.nodes:
        if node.text == word:
            if node.head == -1:
                return None
            return tree.nodes_by_index(node.head).text
    raise AssertionError(f"{word!r} not in tree")


class TestBasicStructure:
    def test_simple_svo(self):
        tree = parse("something read something.")
        assert rel_of(tree, "read") == "root"
        subjects = [n.text for n in tree.nodes if n.deprel == "nsubj"]
        objects = [n.text for n in tree.nodes if n.deprel == "dobj"]
        assert subjects == ["something"]
        assert objects == ["something"]

    def test_subject_detection(self):
        tree = parse("the attacker used something to read credentials.")
        assert rel_of(tree, "attacker") == "nsubj"
        assert head_of(tree, "attacker") == "used"

    def test_instrument_object_of_use(self):
        tree = parse("the attacker used something to read credentials.")
        assert rel_of(tree, "something") == "dobj"
        assert head_of(tree, "something") == "used"

    def test_infinitive_complement(self):
        tree = parse("the attacker used something to read credentials.")
        assert rel_of(tree, "read") == "xcomp"
        assert head_of(tree, "read") == "used"

    def test_prepositional_object(self):
        tree = parse("something read credentials from something.")
        assert rel_of(tree, "from") == "prep"
        nodes = [n for n in tree.nodes if n.deprel == "pobj"]
        assert len(nodes) == 1
        assert tree.nodes_by_index(nodes[0].head).text == "from"

    def test_coordinated_verbs(self):
        tree = parse("something read from something and wrote to something.")
        assert rel_of(tree, "wrote") == "conj"
        assert head_of(tree, "wrote") == "read"
        assert rel_of(tree, "and") == "cc"

    def test_determiner_and_adjective_attachment(self):
        tree = parse("it wrote the gathered information to a file.")
        assert rel_of(tree, "the") == "det"
        assert head_of(tree, "the") == "information"
        assert rel_of(tree, "gathered") == "amod"

    def test_noun_compound(self):
        tree = parse("something read user credentials.")
        assert rel_of(tree, "user") == "compound"
        assert head_of(tree, "user") == "credentials"

    def test_pronoun_subject(self):
        tree = parse("It wrote the data to something.")
        assert rel_of(tree, "It") == "nsubj"

    def test_punctuation_attached(self):
        tree = parse("something read something.")
        assert rel_of(tree, ".") == "punct"

    def test_every_node_has_single_head(self):
        tree = parse("the attacker leveraged something utility to compress "
                     "the tar file and wrote the result to something.")
        roots = [n for n in tree.nodes if n.head == -1]
        assert len(roots) == 1
        for node in tree.nodes:
            if node.head != -1:
                assert node.head in {n.index for n in tree.nodes}

    def test_verbless_sentence_has_noun_root(self):
        tree = parse("the malicious payload something")
        root = tree.root()
        assert root is not None
        assert root.pos in ("NOUN", "PROPN")

    def test_empty_sentence(self):
        tree = parse("")
        assert len(tree) == 0
        assert tree.root() is None


class TestTreeUtilities:
    def test_path_to_root(self):
        tree = parse("something read credentials from something.")
        pobj = next(n for n in tree.nodes if n.deprel == "pobj")
        path_texts = [n.text for n in tree.path_to_root(pobj.index)]
        assert path_texts[0] == pobj.text
        assert path_texts[-1] == "read"

    def test_lowest_common_ancestor(self):
        tree = parse("the attacker used something to read data from "
                     "something.")
        iocs = [n for n in tree.nodes if n.text == "something"]
        lca = tree.lowest_common_ancestor(iocs[0].index, iocs[1].index)
        assert lca.text == "used"

    def test_path_between_passes_through_lca(self):
        tree = parse("the attacker used something to read data from "
                     "something.")
        iocs = [n for n in tree.nodes if n.text == "something"]
        path = tree.path_between(iocs[0].index, iocs[1].index)
        assert "used" in [n.text for n in path]
        assert path[0].text == "something"

    def test_children(self):
        tree = parse("something read user credentials.")
        read_node = next(n for n in tree.nodes if n.text == "read")
        child_texts = {n.text for n in tree.children(read_node.index)}
        assert "credentials" in child_texts

    def test_remove_nodes_keeps_connectivity(self):
        tree = parse("then, the attacker used something to read data.")
        removable = {n.index for n in tree.nodes if n.pos == "PUNCT"}
        pruned = tree.remove_nodes(removable)
        assert len(pruned) == len(tree) - len(removable)
        for node in pruned.nodes:
            assert node.head == -1 or node.head in {n.index
                                                    for n in pruned.nodes}

    def test_remove_nodes_preserves_indices(self):
        tree = parse("the attacker used something to read data.")
        kept_indices = {n.index for n in tree.nodes if n.pos != "PUNCT"}
        pruned = tree.remove_nodes({n.index for n in tree.nodes
                                    if n.pos == "PUNCT"})
        assert {n.index for n in pruned.nodes} == kept_indices

    def test_to_triples(self):
        tree = parse("something read something.")
        triples = tree.to_triples()
        assert ("ROOT", "root", "read") in triples

    def test_verbs_listing(self):
        tree = parse("something read from something and wrote to something.")
        assert {v.text for v in tree.verbs()} == {"read", "wrote"}
