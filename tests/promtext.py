"""Minimal Prometheus text-format parser used to validate /metrics.

This is deliberately a *validator*, not a client: every rule it enforces
is one a real Prometheus scraper relies on, so a regression in the
exposition renderer fails here before it fails in a deployment.
Checks: metric/label name charsets, label-value quoting and escape
sequences, float-parseable sample values, a ``# HELP`` + ``# TYPE``
pair preceding every family's samples, histogram series completeness
(``_bucket``/``_sum``/``_count``, a ``+Inf`` bucket, monotone
cumulative counts).
"""

from __future__ import annotations

import math
import re

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")

_HISTOGRAM_SUFFIXES = ("_bucket", "_sum", "_count")


class ExpositionError(AssertionError):
    """A line that a Prometheus scraper would reject (or misread)."""


def _parse_label_block(block: str, line: str) -> dict[str, str]:
    """Parse ``name="value",...`` honouring backslash escapes."""
    labels: dict[str, str] = {}
    index = 0
    while index < len(block):
        eq = block.find("=", index)
        if eq < 0:
            raise ExpositionError(f"malformed label block: {line}")
        name = block[index:eq]
        if not LABEL_NAME.match(name):
            raise ExpositionError(f"invalid label name {name!r}: {line}")
        if eq + 1 >= len(block) or block[eq + 1] != '"':
            raise ExpositionError(f"unquoted label value: {line}")
        value_chars: list[str] = []
        pos = eq + 2
        while True:
            if pos >= len(block):
                raise ExpositionError(
                    f"unterminated label value: {line}")
            char = block[pos]
            if char == "\\":
                if pos + 1 >= len(block):
                    raise ExpositionError(
                        f"dangling escape in label value: {line}")
                escape = block[pos + 1]
                if escape == "n":
                    value_chars.append("\n")
                elif escape in ("\\", '"'):
                    value_chars.append(escape)
                else:
                    raise ExpositionError(
                        f"unknown escape \\{escape}: {line}")
                pos += 2
                continue
            if char == '"':
                break
            value_chars.append(char)
            pos += 1
        labels[name] = "".join(value_chars)
        index = pos + 1
        if index < len(block):
            if block[index] != ",":
                raise ExpositionError(
                    f"expected ',' between labels: {line}")
            index += 1
    return labels


def _family_of(sample_name: str, types: dict[str, str]) -> str:
    """Map a sample name to its family (histogram suffix stripping)."""
    for suffix in _HISTOGRAM_SUFFIXES:
        if sample_name.endswith(suffix):
            base = sample_name[:-len(suffix)]
            if types.get(base) == "histogram":
                return base
    return sample_name


def parse_prometheus_text(text: str) -> dict[str, dict]:
    """Parse (and validate) an exposition; returns per-family data.

    Returns ``{family: {"help": str, "type": str, "samples":
    [(sample_name, labels_dict, value), ...]}}``.  Raises
    :class:`ExpositionError` on any violation.
    """
    helps: dict[str, str] = {}
    types: dict[str, str] = {}
    families: dict[str, dict] = {}
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):]
            name, _, help_text = rest.partition(" ")
            if not METRIC_NAME.match(name):
                raise ExpositionError(f"invalid HELP name: {line}")
            if name in helps:
                raise ExpositionError(f"duplicate HELP for {name}")
            helps[name] = help_text
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):]
            name, _, kind = rest.partition(" ")
            if not METRIC_NAME.match(name):
                raise ExpositionError(f"invalid TYPE name: {line}")
            if kind not in ("counter", "gauge", "histogram",
                            "summary", "untyped"):
                raise ExpositionError(f"unknown TYPE: {line}")
            if name not in helps:
                raise ExpositionError(
                    f"TYPE before HELP for {name}")
            if name in types:
                raise ExpositionError(f"duplicate TYPE for {name}")
            types[name] = kind
            families[name] = {"help": helps[name], "type": kind,
                              "samples": []}
            continue
        if line.startswith("#"):
            continue           # comment
        match = _SAMPLE.match(line)
        if match is None:
            raise ExpositionError(f"malformed sample line: {line}")
        sample_name = match.group("name")
        family = _family_of(sample_name, types)
        if family not in families:
            raise ExpositionError(
                f"sample without HELP/TYPE pair: {line}")
        labels = _parse_label_block(match.group("labels") or "", line)
        raw_value = match.group("value")
        try:
            value = float(raw_value.replace("+Inf", "inf")
                          .replace("-Inf", "-inf"))
        except ValueError:
            raise ExpositionError(
                f"unparseable sample value: {line}") from None
        families[family]["samples"].append((sample_name, labels, value))
    _validate_histograms(families)
    return families


def _validate_histograms(families: dict[str, dict]) -> None:
    for family, data in families.items():
        if data["type"] != "histogram":
            continue
        series: dict[tuple, dict] = {}
        for sample_name, labels, value in data["samples"]:
            key = tuple(sorted((name, val) for name, val
                               in labels.items() if name != "le"))
            entry = series.setdefault(
                key, {"buckets": [], "sum": None, "count": None})
            if sample_name.endswith("_bucket"):
                if "le" not in labels:
                    raise ExpositionError(
                        f"{family}: bucket sample without le label")
                bound = float(labels["le"].replace("+Inf", "inf"))
                entry["buckets"].append((bound, value))
            elif sample_name.endswith("_sum"):
                entry["sum"] = value
            elif sample_name.endswith("_count"):
                entry["count"] = value
        for key, entry in series.items():
            if entry["sum"] is None or entry["count"] is None:
                raise ExpositionError(
                    f"{family}{dict(key)}: missing _sum/_count")
            buckets = sorted(entry["buckets"])
            if not buckets or buckets[-1][0] != math.inf:
                raise ExpositionError(
                    f"{family}{dict(key)}: missing +Inf bucket")
            counts = [count for _bound, count in buckets]
            if any(a > b for a, b in zip(counts, counts[1:])):
                raise ExpositionError(
                    f"{family}{dict(key)}: bucket counts not "
                    f"cumulative")
            if counts[-1] != entry["count"]:
                raise ExpositionError(
                    f"{family}{dict(key)}: +Inf bucket != _count")
