"""Span-tree tracing: structure, propagation, and scatter grafting.

The propagation tests mirror the two places a trace must survive a
thread/process hop in production: the asyncio front end's bounded
``ThreadPoolExecutor`` (contextvars must be copied by hand) and the
multiprocessing scatter pool (workers return span metadata alongside
their payloads, grafted back by the gather side) — the latter at both
``workers=1`` (serial in-process) and ``workers=4`` (real pool).
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from operator import attrgetter

import pytest

from repro.audit import AuditCollector, CollectorConfig, \
    generate_benign_noise
from repro.obs import trace
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .conftest import record_data_leak_attack

QUERY = ('proc p["%/usr/bin/scp%"] read file f["%/var/log/auth.log%"] '
         'as e1 return p, f')

#: Segments to cut the corpus into (enough for a real fan-out).
SEGMENT_BATCHES = 5


def _events():
    collector = AuditCollector(CollectorConfig(seed=7))
    record_data_leak_attack(collector)
    events = collector.events() + generate_benign_noise(num_sessions=6,
                                                        seed=13)
    events.sort(key=attrgetter("start_time", "event_id"))
    return events


@pytest.fixture(scope="module")
def segmented_store():
    events = _events()
    store = DualStore(layout="segmented")
    size = max(1, len(events) // SEGMENT_BATCHES)
    for start in range(0, len(events), size):
        store.append_events(events[start:start + size])
        store.flush_appends()
    yield store
    store.close()


def _find(node, name):
    """Depth-first search for every span named ``name``."""
    found = []
    if node["name"] == name:
        found.append(node)
    for child in node["children"]:
        found.extend(_find(child, name))
    return found


class TestSpanTree:
    def test_nested_spans_attach_to_parent(self):
        with trace.start_trace("root", request="r1") as root:
            with trace.start_span("outer") as outer:
                outer.set_attribute("k", "v")
                with trace.start_span("inner"):
                    pass
        tree = root.as_dict()
        assert tree["name"] == "root"
        assert tree["attributes"] == {"request": "r1"}
        assert tree["duration_ms"] >= 0
        (outer_node,) = tree["children"]
        assert outer_node["name"] == "outer"
        assert outer_node["attributes"] == {"k": "v"}
        assert [child["name"] for child in outer_node["children"]] \
            == ["inner"]

    def test_span_outside_trace_is_noop(self):
        with trace.start_span("orphan") as span:
            span.set_attribute("ignored", 1)
        assert span is trace.NULL_SPAN
        assert trace.current_span() is None

    def test_disabled_mode_yields_none_root(self):
        previous = trace.set_enabled(False)
        try:
            with trace.start_trace("root") as root:
                assert root is None
                with trace.start_span("child") as span:
                    assert span is trace.NULL_SPAN
                assert trace.current_span() is None
        finally:
            trace.set_enabled(previous)

    def test_attach_grafts_completed_child(self):
        with trace.start_trace("root") as root:
            with trace.start_span("scatter") as span:
                span.attach("segment_scan", 1.5, {"segment": "s1"})
        (scatter,) = root.as_dict()["children"]
        (grafted,) = scatter["children"]
        assert grafted["name"] == "segment_scan"
        assert grafted["duration_ms"] == 1.5
        assert grafted["attributes"] == {"segment": "s1"}

    def test_render_span_tree(self):
        with trace.start_trace("query") as root:
            with trace.start_span("scan", pattern="e1"):
                pass
        text = trace.render_span_tree(root.as_dict())
        lines = text.splitlines()
        assert lines[0].startswith("- query")
        assert lines[1].strip().startswith("- scan")
        assert "pattern=e1" in lines[1]


class TestExecutorPoolPropagation:
    def test_wrap_carries_trace_into_worker_thread(self):
        def work():
            with trace.start_span("in_pool") as span:
                span.set_attribute("thread", "worker")
            return trace.current_span() is not None

        with ThreadPoolExecutor(max_workers=1) as pool:
            with trace.start_trace("request") as root:
                saw_trace = pool.submit(trace.wrap(work)).result()
            # Without wrap() the worker thread must NOT see the trace.
            with trace.start_trace("request2") as root2:
                pool.submit(work).result()
        assert saw_trace
        assert [child["name"] for child
                in root.as_dict()["children"]] == ["in_pool"]
        assert root2.as_dict()["children"] == []


class TestScatterPropagation:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_per_segment_spans_graft_into_scatter(self, segmented_store,
                                                  workers):
        executor = TBQLExecutor(segmented_store, workers=workers)
        try:
            with trace.start_trace("query") as root:
                result = executor.execute(QUERY)
        finally:
            executor.close()
        tree = root.as_dict()
        (scatter,) = _find(tree, "scatter")
        scanned = scatter["attributes"]["segments"]
        assert scanned == result.plan[0].segments_scanned
        segment_spans = [child for child in scatter["children"]
                        if child["name"] == "segment_scan"]
        assert len(segment_spans) == scanned > 1
        for span in segment_spans:
            assert span["duration_ms"] > 0
            assert span["attributes"]["strategy"] in ("columnar",
                                                      "sqlite")
            assert span["attributes"]["rows"] >= 0
            assert span["attributes"]["segment"]
        total_child_ms = sum(span["duration_ms"]
                             for span in segment_spans)
        # Serial: children time nests strictly inside the scatter span.
        # Pooled: the sum is bounded by workers * the scatter wall time.
        budget = scatter["duration_ms"] * (1 if workers == 1
                                           else workers)
        assert total_child_ms <= budget + 1.0

    @pytest.mark.parametrize("workers", [1, 4])
    def test_rows_identical_with_and_without_tracing(
            self, segmented_store, workers):
        executor = TBQLExecutor(segmented_store, workers=workers)
        try:
            plain = executor.execute(QUERY)
            with trace.start_trace("query"):
                traced = executor.execute(QUERY)
        finally:
            executor.close()
        assert traced.rows == plain.rows
        assert traced.matched_events == plain.matched_events

    def test_stage_spans_cover_pipeline(self, segmented_store):
        executor = TBQLExecutor(segmented_store, workers=1)
        try:
            with trace.start_trace("query") as root:
                executor.execute(QUERY)
        finally:
            executor.close()
        tree = root.as_dict()
        names = {child["name"] for child in tree["children"]}
        assert {"parse", "plan", "scan", "join"} <= names
        (scan,) = _find(tree, "scan")
        nested = {child["name"] for child in scan["children"]}
        assert {"scatter", "hydrate"} <= nested
