"""Unit tests for the TBQL lexer and parser (Grammar 1)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.entities import EntityType
from repro.errors import TBQLSyntaxError
from repro.tbql.ast import (AttributeComparison, AttributeRelation,
                            BareValueFilter, BooleanFilter, MembershipFilter,
                            OperationAtom, OperationBoolean,
                            OperationNegation, TemporalRelation)
from repro.tbql.lexer import tokenize, unescape_string
from repro.tbql.parser import parse_tbql

FIG2_QUERY = """
proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1
proc p1 write file f2["%/tmp/upload.tar%"] as evt2
proc p2["%/bin/bzip2%"] read file f2 as evt3
proc p2 write file f3["%/tmp/upload.tar.bz2%"] as evt4
proc p3["%/usr/bin/gpg%"] read file f3 as evt5
proc p3 write file f4["%/tmp/upload%"] as evt6
proc p4["%/usr/bin/curl%"] read file f4 as evt7
proc p4 connect ip i1["192.168.29.128"] as evt8
with evt1 before evt2, evt2 before evt3, evt3 before evt4,
     evt4 before evt5, evt5 before evt6, evt6 before evt7, evt7 before evt8
return distinct p1, f1, f2, p2, f3, p3, f4, p4, i1
"""


class TestLexer:
    def test_tokenizes_strings_and_symbols(self):
        tokens = tokenize('proc p["%/bin/tar%"] read file f')
        kinds = [token.kind for token in tokens]
        assert kinds.count("string") == 1
        assert kinds[-1] == "eof"

    def test_line_and_column_tracking(self):
        tokens = tokenize("proc p\nread file f")
        read_token = next(t for t in tokens if t.text == "read")
        assert read_token.line == 2
        assert read_token.column == 1

    def test_comments_ignored(self):
        tokens = tokenize("proc p // a comment\nread file f")
        assert all(token.kind != "comment" for token in tokens)
        assert "comment" not in [t.text for t in tokens]

    def test_unexpected_character_raises_with_position(self):
        with pytest.raises(TBQLSyntaxError):
            tokenize("proc p @ read")

    def test_unescape_string(self):
        assert unescape_string('"a\\"b"') == 'a"b'


class TestParserBasics:
    def test_figure2_query_parses(self):
        query = parse_tbql(FIG2_QUERY)
        assert len(query.patterns) == 8
        assert len(query.relations) == 7
        assert query.return_clause.distinct
        assert len(query.return_clause.items) == 9

    def test_entity_types(self):
        query = parse_tbql("proc p read file f return p")
        assert query.patterns[0].subject.entity_type is EntityType.PROCESS
        assert query.patterns[0].obj.entity_type is EntityType.FILE

    def test_bare_value_filter(self):
        query = parse_tbql('proc p["%/bin/tar%"] read file f return p')
        assert isinstance(query.patterns[0].subject.attr_filter,
                          BareValueFilter)

    def test_attribute_comparison_filter(self):
        query = parse_tbql('proc p[pid = 42] read file f return p')
        filt = query.patterns[0].subject.attr_filter
        assert isinstance(filt, AttributeComparison)
        assert filt.attribute == "pid" and filt.value == 42

    def test_boolean_filter(self):
        query = parse_tbql(
            'proc p[pid = 1 && exename = "%chrome%"] read file f return p')
        assert isinstance(query.patterns[0].subject.attr_filter,
                          BooleanFilter)

    def test_membership_filter(self):
        query = parse_tbql(
            'proc p[exename in {"/bin/sh", "/bin/bash"}] read file f '
            'return p')
        filt = query.patterns[0].subject.attr_filter
        assert isinstance(filt, MembershipFilter)
        assert filt.values == ("/bin/sh", "/bin/bash")

    def test_not_in_filter(self):
        query = parse_tbql(
            'proc p read file f[name not in {"/tmp/a"}] return p')
        assert query.patterns[0].obj.attr_filter.negated

    def test_operation_boolean(self):
        query = parse_tbql("proc p read || write file f return p")
        operation = query.patterns[0].operation
        assert isinstance(operation, OperationBoolean)
        assert operation.operator == "||"

    def test_operation_negation(self):
        query = parse_tbql("proc p !read file f return p")
        assert isinstance(query.patterns[0].operation, OperationNegation)

    def test_unknown_operation_raises(self):
        with pytest.raises(TBQLSyntaxError):
            parse_tbql("proc p teleport file f return p")

    def test_pattern_id_and_event_filter(self):
        query = parse_tbql(
            "proc p read file f as evt1[data_amount > 100] return p")
        assert query.patterns[0].pattern_id == "evt1"
        assert isinstance(query.patterns[0].pattern_filter,
                          AttributeComparison)

    def test_missing_pattern_raises(self):
        with pytest.raises(TBQLSyntaxError):
            parse_tbql("return distinct p")

    def test_garbage_after_query_raises(self):
        with pytest.raises(TBQLSyntaxError):
            parse_tbql("proc p read file f return p garbage")


class TestPathPatterns:
    def test_fuzzy_arrow_defaults(self):
        query = parse_tbql("proc p ~> file f return p")
        path = query.patterns[0].path
        assert path.fuzzy_arrow
        assert path.min_length == 1 and path.max_length is None
        assert path.operation is None

    def test_bounded_range(self):
        path = parse_tbql("proc p ~>(2~4)[read] file f return p") \
            .patterns[0].path
        assert (path.min_length, path.max_length) == (2, 4)
        assert isinstance(path.operation, OperationAtom)

    def test_min_only_range(self):
        path = parse_tbql("proc p ~>(2~) file f return p").patterns[0].path
        assert (path.min_length, path.max_length) == (2, None)

    def test_max_only_range(self):
        path = parse_tbql("proc p ~>(~4) file f return p").patterns[0].path
        assert (path.min_length, path.max_length) == (1, 4)

    def test_length_one_arrow(self):
        path = parse_tbql("proc p ->[open] file f return p").patterns[0].path
        assert not path.fuzzy_arrow
        assert (path.min_length, path.max_length) == (1, 1)

    def test_invalid_range_raises(self):
        with pytest.raises(TBQLSyntaxError):
            parse_tbql("proc p ~>(4~2) file f return p")


class TestWindowsAndRelations:
    def test_global_last_window(self):
        query = parse_tbql("last 2 hours proc p read file f return p")
        window = query.global_filters[0].window
        assert window.kind == "last" and window.amount == 2.0

    def test_pattern_range_window(self):
        query = parse_tbql('proc p read file f as e1 from "2018-04-10" to '
                           '"2018-04-12" return p')
        assert query.patterns[0].window.kind == "range"

    def test_temporal_relation_with_bound(self):
        query = parse_tbql("proc p read file f as e1 "
                           "proc p write file g as e2 "
                           "with e1 before[0-5 min] e2 return p")
        relation = query.relations[0]
        assert isinstance(relation, TemporalRelation)
        assert relation.max_gap == 5.0 and relation.unit == "min"

    def test_attribute_relation(self):
        query = parse_tbql("proc p read file f as e1 "
                           "proc q write file g as e2 "
                           "with p.pid = q.pid return p")
        relation = query.relations[0]
        assert isinstance(relation, AttributeRelation)
        assert relation.left == "p.pid" and relation.right == "q.pid"

    def test_multiple_with_clauses(self):
        query = parse_tbql("proc p read file f as e1 "
                           "proc p write file g as e2 "
                           "with e1 before e2 with p.pid = p.pid return p")
        assert len(query.relations) == 2

    def test_entity_and_pattern_id_listing(self):
        query = parse_tbql(FIG2_QUERY)
        assert query.entity_ids()[:3] == ["p1", "f1", "f2"]
        assert query.pattern_ids() == [f"evt{i}" for i in range(1, 9)]


class TestParserRobustness:
    @given(st.text(max_size=40))
    @settings(max_examples=80, deadline=None)
    def test_arbitrary_text_never_crashes_uncontrolled(self, text):
        try:
            parse_tbql(text)
        except TBQLSyntaxError:
            pass

    @given(st.sampled_from(["read", "write", "execute", "connect"]),
           st.sampled_from(["file", "ip"]),
           st.text(alphabet="abcdefghij/._", min_size=1, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_generated_single_pattern_roundtrip(self, operation, obj_type,
                                                value):
        if obj_type == "ip":
            operation = "connect"
        text = (f'proc p["%{value}%"] {operation} {obj_type} '
                f'x["%{value}%"] as e1 return distinct p, x')
        query = parse_tbql(text)
        assert query.patterns[0].pattern_id == "e1"
