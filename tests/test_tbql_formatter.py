"""Tests for the TBQL formatter (AST -> canonical text) and CLI."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tbql.formatter import (format_pattern, format_query,
                                  format_relation, format_window)
from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import resolve_query

from .test_tbql_parser import FIG2_QUERY


def roundtrip(text: str) -> str:
    """Parse, format, and re-parse; return the re-formatted text."""
    formatted = format_query(parse_tbql(text))
    reparsed = parse_tbql(formatted)
    return format_query(reparsed)


class TestFormatter:
    def test_simple_pattern_roundtrip(self):
        text = ('proc p1["%/bin/tar%"] read file '
                'f1["%/etc/passwd%"] as evt1\n'
                'return distinct p1, f1')
        assert format_query(parse_tbql(text)) == text

    def test_figure2_roundtrip_is_fixed_point(self):
        once = format_query(parse_tbql(FIG2_QUERY))
        assert roundtrip(FIG2_QUERY) == once
        # the canonical form still resolves to the same 8 patterns
        assert len(resolve_query(parse_tbql(once)).patterns) == 8

    def test_operation_expression_formatting(self):
        query = parse_tbql("proc p read || write file f return p")
        assert "(read || write)" in format_pattern(query.patterns[0])

    def test_negated_operation(self):
        query = parse_tbql("proc p !read file f return p")
        assert "!read" in format_pattern(query.patterns[0])

    def test_path_pattern_formatting(self):
        query = parse_tbql("proc p ~>(2~4)[read] file f return p")
        assert "~>(2~4)[read]" in format_pattern(query.patterns[0])
        query = parse_tbql("proc p ->[open] file f return p")
        assert "->[open]" in format_pattern(query.patterns[0])
        query = parse_tbql("proc p ~> file f return p")
        assert " ~> " in format_pattern(query.patterns[0])

    def test_membership_filter_formatting(self):
        query = parse_tbql('proc p[exename in {"/bin/sh", "/bin/bash"}] '
                           'read file f return p')
        text = format_pattern(query.patterns[0])
        assert 'exename in {"/bin/sh", "/bin/bash"}' in text

    def test_temporal_relation_with_bound(self):
        query = parse_tbql("proc p read file f as e1 "
                           "proc p write file g as e2 "
                           "with e1 before[0-5 min] e2 return p")
        assert format_relation(query.relations[0]) == "e1 before[0-5 min] e2"

    def test_attribute_relation(self):
        query = parse_tbql("proc p read file f as e1 "
                           "proc q write file g as e2 "
                           "with p.pid = q.pid return p")
        assert format_relation(query.relations[0]) == "p.pid = q.pid"

    def test_window_formatting(self):
        query = parse_tbql('last 2 hours proc p read file f as e1 '
                           'from "2018-04-10" to "2018-04-12" return p')
        assert format_window(query.global_filters[0].window) == \
            "last 2 hours"
        assert format_window(query.patterns[0].window) == \
            'from "2018-04-10" to "2018-04-12"'

    def test_event_filter_formatting(self):
        text = roundtrip("proc p read file f as e1[data_amount > 100] "
                         "return p")
        assert "as e1[data_amount > 100]" in text

    def test_synthesized_query_is_already_canonical(self,
                                                    data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        synthesized = synthesize_tbql(data_leak_extraction.graph).text
        assert format_query(parse_tbql(synthesized)) == synthesized

    @given(st.sampled_from(["read", "write", "execute", "connect", "send"]),
           st.sampled_from(["file", "ip"]),
           st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, operation, obj_kind, distinct,
                                use_filter):
        if obj_kind == "ip":
            operation = "connect"
        obj_filter = '["%x_y.z%"]' if use_filter else ""
        text = (f'proc p["%/bin/a%"] {operation} {obj_kind} o{obj_filter} '
                f'as e1\nreturn {"distinct " if distinct else ""}p, o')
        first = format_query(parse_tbql(text))
        second = format_query(parse_tbql(first))
        assert first == second


class TestCLI:
    @pytest.fixture()
    def report_and_log(self, tmp_path, data_leak_events):
        from repro.audit.logfmt import format_log
        from .conftest import DATA_LEAK_TEXT
        report = tmp_path / "report.txt"
        report.write_text(DATA_LEAK_TEXT, encoding="utf-8")
        log = tmp_path / "audit.log"
        log.write_text(format_log(data_leak_events), encoding="utf-8")
        return str(report), str(log)

    def test_extract_command(self, report_and_log, capsys):
        from repro.cli import main
        report, _log = report_and_log
        assert main(["extract", "--report", report, "--show-iocs"]) == 0
        output = capsys.readouterr().out
        assert "8 relations" in output
        assert "/bin/tar" in output

    def test_synthesize_command(self, report_and_log, capsys):
        from repro.cli import main
        report, _log = report_and_log
        assert main(["synthesize", "--report", report]) == 0
        output = capsys.readouterr().out
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"]' in output

    def test_hunt_command(self, report_and_log, capsys):
        from repro.cli import main
        report, log = report_and_log
        assert main(["hunt", "--report", report, "--log", log]) == 0
        output = capsys.readouterr().out
        assert "--connect--> 192.168.29.128" in output

    def test_query_command(self, report_and_log, capsys):
        from repro.cli import main
        _report, log = report_and_log
        exit_code = main([
            "query", "--log", log, "--tbql",
            'proc p["%/usr/bin/curl%"] connect ip i return distinct p, i'])
        assert exit_code == 0
        assert "192.168.29.128" in capsys.readouterr().out

    def test_query_command_no_match_exit_code(self, report_and_log):
        from repro.cli import main
        _report, log = report_and_log
        exit_code = main([
            "query", "--log", log, "--tbql",
            'proc p["%/bin/nothing%"] read file f return p'])
        assert exit_code == 1
