"""Tests for the replicated dual store and the error hierarchy."""

import pytest

from repro import errors
from repro.audit import AuditCollector, generate_benign_noise
from repro.storage import DualStore


@pytest.fixture()
def small_events():
    collector = AuditCollector()
    tar = collector.spawn_process("/bin/tar")
    collector.read_file(tar, "/etc/passwd", burst=6)
    collector.write_file(tar, "/tmp/upload.tar", burst=4)
    curl = collector.spawn_process("/usr/bin/curl")
    collector.connect_ip(curl, "192.168.29.128")
    return collector.events()


class TestDualStore:
    def test_data_replicated_across_backends(self, small_events):
        with DualStore() as store:
            stored = store.load_events(small_events)
            stats = store.statistics()
            assert stats["relational_events"] == stored
            assert stats["graph_edges"] == stored
            assert stats["relational_entities"] == stats["graph_nodes"]

    def test_reduction_applied_by_default(self, small_events):
        with DualStore() as store:
            stored = store.load_events(small_events)
            assert stored < len(small_events)
            assert store.last_reduction is not None
            assert store.last_reduction.reduction_ratio > 1.0
            assert store.statistics()["reduction_ratio"] > 1.0

    def test_reduction_can_be_disabled(self, small_events):
        with DualStore(reduce=False) as store:
            stored = store.load_events(small_events)
            assert stored == len(small_events)
            assert store.last_reduction is None

    def test_custom_merge_threshold(self, small_events):
        with DualStore(merge_threshold=0.0) as loose, \
                DualStore(merge_threshold=10.0) as tight:
            loose_count = loose.load_events(small_events)
            tight_count = tight.load_events(small_events)
            assert tight_count <= loose_count

    def test_events_accessor_returns_reduced_stream(self, small_events):
        with DualStore() as store:
            stored = store.load_events(small_events)
            assert len(store.events()) == stored

    def test_both_query_interfaces_agree(self, small_events):
        with DualStore() as store:
            store.load_events(small_events + generate_benign_noise(5))
            sql_rows = store.execute_sql(
                "SELECT COUNT(*) AS n FROM events e JOIN entities s ON "
                "e.subject_id = s.id WHERE s.exename = '/bin/tar'")
            cypher_rows = store.execute_cypher(
                "MATCH (p:proc {exename: '/bin/tar'})-[e:EVENT]->(o) "
                "RETURN e")
            assert sql_rows[0]["n"] == len(cypher_rows)

    def test_on_disk_relational_path(self, tmp_path, small_events):
        path = tmp_path / "events.db"
        with DualStore(relational_path=path) as store:
            store.load_events(small_events)
        assert path.exists()

    def test_close_is_idempotent(self, small_events):
        store = DualStore()
        store.load_events(small_events)
        store.close()
        store.close()   # second close must be a no-op, not an error

    def test_context_manager_closes_connection(self, tmp_path,
                                               small_events):
        path = tmp_path / "events.db"
        with DualStore(relational_path=path) as store:
            store.load_events(small_events)
        with pytest.raises(errors.StorageError):
            store.execute_sql("SELECT COUNT(*) AS n FROM events")

    def test_data_version_bumps_on_reload(self, small_events):
        with DualStore() as store:
            before = store.data_version
            store.load_events(small_events)
            after_first = store.data_version
            store.load_events(small_events)
            assert before < after_first < store.data_version


class TestErrorHierarchy:
    def test_all_errors_derive_from_repro_error(self):
        for name in ("AuditError", "StorageError", "CypherError", "NLPError",
                     "ExtractionError", "TBQLError", "TBQLSyntaxError",
                     "TBQLSemanticError", "SynthesisError", "ExecutionError",
                     "BenchmarkError"):
            assert issubclass(getattr(errors, name), errors.ReproError)

    def test_tbql_errors_derive_from_tbql_error(self):
        for name in ("TBQLSyntaxError", "TBQLSemanticError",
                     "SynthesisError", "ExecutionError"):
            assert issubclass(getattr(errors, name), errors.TBQLError)

    def test_syntax_error_carries_location(self):
        error = errors.TBQLSyntaxError("bad token", line=3, column=7)
        assert "line 3" in str(error)
        assert error.line == 3 and error.column == 7

    def test_cypher_error_position(self):
        error = errors.CypherError("oops", position=12)
        assert error.position == 12

    def test_catching_base_class_catches_subsystem_errors(self):
        from repro.tbql.parser import parse_tbql
        with pytest.raises(errors.ReproError):
            parse_tbql("proc p @@@")
