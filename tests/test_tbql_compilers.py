"""Unit tests for the TBQL -> SQL and TBQL -> Cypher compilers."""

import pytest

from repro.errors import TBQLSemanticError
from repro.storage.graph import parse_cypher
from repro.tbql.compiler_cypher import (compile_giant_cypher,
                                        compile_pattern_cypher)
from repro.tbql.compiler_sql import compile_giant_sql, compile_pattern_sql
from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import resolve_query


def resolve(text):
    return resolve_query(parse_tbql(text))


class TestPatternSQL:
    def test_basic_pattern_compiles_to_join(self):
        resolved = resolve('proc p["%/bin/tar%"] read file f["%/etc/p%"] '
                           'return p')
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        assert "JOIN entities s" in compiled.sql
        assert "JOIN entities o" in compiled.sql
        assert "LIKE" in compiled.sql
        assert "%/bin/tar%" in compiled.params

    def test_operation_filter(self):
        resolved = resolve("proc p read || write file f return p")
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        assert "e.operation IN (?, ?)" in compiled.sql
        assert set(compiled.params) >= {"read", "write"}

    def test_entity_type_constraints_always_present(self):
        resolved = resolve("proc p read file f return p")
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        assert "s.type = ?" in compiled.sql and "o.type = ?" in compiled.sql

    def test_candidate_injection(self):
        resolved = resolve("proc p read file f return p")
        compiled = compile_pattern_sql(resolved.patterns[0], resolved,
                                       subject_candidates=[1, 2, 3])
        assert "s.id IN (?, ?, ?)" in compiled.sql

    def test_window_filter(self):
        resolved = resolve('proc p read file f as e1 from "100" to "200" '
                           'return p')
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        assert "e.start_time >= ?" in compiled.sql
        assert "e.end_time <= ?" in compiled.sql

    def test_event_attribute_filter(self):
        resolved = resolve("proc p read file f as e1[data_amount > 10] "
                           "return p")
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        assert "e.data_amount > ?" in compiled.sql

    def test_group_attribute_maps_to_grp_column(self):
        resolved = resolve('proc p[group = "wheel"] read file f return p')
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        assert "s.grp = ?" in compiled.sql

    def test_runs_on_relational_store(self, data_leak_store):
        resolved = resolve('proc p["%/bin/tar%"] read file '
                           'f["%/etc/passwd%"] return p, f')
        compiled = compile_pattern_sql(resolved.patterns[0], resolved)
        rows = data_leak_store.execute_sql(compiled.sql, compiled.params)
        assert rows
        assert all(row["operation"] == "read" for row in rows)


class TestGiantSQL:
    def test_one_alias_triple_per_pattern(self):
        resolved = resolve("proc p read file f as e1 "
                           "proc p write file g as e2 return p")
        sql = compile_giant_sql(resolved).sql
        assert "events e1" in sql and "events e2" in sql
        assert "entities s1" in sql and "entities o2" in sql

    def test_shared_entity_join_constraint(self):
        resolved = resolve("proc p read file f as e1 "
                           "proc p write file g as e2 return p")
        sql = compile_giant_sql(resolved).sql
        assert "s1.id = s2.id" in sql

    def test_temporal_clause(self):
        resolved = resolve("proc p read file f as e1 "
                           "proc p write file g as e2 "
                           "with e1 before e2 return p")
        sql = compile_giant_sql(resolved).sql
        assert "e1.end_time <= e2.start_time" in sql

    def test_bounded_temporal_clause(self):
        resolved = resolve("proc p read file f as e1 "
                           "proc p write file g as e2 "
                           "with e1 before[0-5 min] e2 return p")
        assert "e2.start_time - e1.end_time <= 300" in \
            compile_giant_sql(resolved).sql

    def test_attribute_relation_clause(self):
        resolved = resolve("proc p read file f as e1 "
                           "proc q write file g as e2 "
                           "with p.pid = q.pid return p")
        assert "s1.pid = s2.pid" in compile_giant_sql(resolved).sql

    def test_distinct_return(self):
        resolved = resolve("proc p read file f return distinct p, f.name")
        sql = compile_giant_sql(resolved).sql
        assert sql.startswith("SELECT DISTINCT")
        assert "AS p_exename" in sql and "AS f_name" in sql

    def test_executes_on_store(self, data_leak_store, data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        text = synthesize_tbql(data_leak_extraction.graph).text
        resolved = resolve(text)
        compiled = compile_giant_sql(resolved)
        rows = data_leak_store.execute_sql(compiled.sql, compiled.params)
        assert len(rows) == 1
        assert rows[0]["p1_exename"] == "/bin/tar"


class TestPatternCypher:
    def test_event_pattern_compiles(self):
        resolved = resolve('proc p["%/bin/tar%"] ->[read] file f return p')
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved)
        assert "MATCH (s:proc)-[e:EVENT {operation: 'read'}]->(o:file)" in \
            cypher
        assert "s.exename CONTAINS '/bin/tar'" in cypher
        parse_cypher(cypher)        # must be valid mini-Cypher

    def test_variable_length_pattern(self):
        resolved = resolve("proc p ~>(2~4)[read] file f return p")
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved)
        assert "[e:EVENT*2..4 {operation: 'read'}]" in cypher
        parse_cypher(cypher)

    def test_unbounded_path_gets_default_max(self):
        resolved = resolve("proc p ~> file f return p")
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved)
        assert "*1..6" in cypher

    def test_multi_operation_filter_in_where(self):
        resolved = resolve("proc p ->[read || write] file f return p")
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved)
        assert "e.operation = 'read' OR e.operation = 'write'" in cypher
        parse_cypher(cypher)

    def test_wildcard_translation(self):
        resolved = resolve('proc p["/bin/%"] ->[read] file f["%.tar"] '
                           'return p')
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved)
        assert "STARTS WITH '/bin/'" in cypher
        assert "ENDS WITH '.tar'" in cypher

    def test_runs_on_graph_store(self, data_leak_store):
        resolved = resolve('proc p["%/usr/bin/curl%"] ->[connect] ip '
                           'i["192.168.29.128"] return p, i')
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved)
        rows = data_leak_store.execute_cypher(cypher)
        assert rows
        assert all("subject_id" in row for row in rows)


class TestGiantCypher:
    def test_every_pattern_in_match(self):
        resolved = resolve("proc p ->[read] file f as e1 "
                           "proc p ->[write] file g as e2 return p")
        cypher = compile_giant_cypher(resolved)
        assert cypher.count("-[e1:EVENT") == 1
        assert cypher.count("-[e2:EVENT") == 1
        parse_cypher(cypher)

    def test_shared_variables_not_redeclared(self):
        resolved = resolve("proc p ->[read] file f as e1 "
                           "proc p ->[write] file g as e2 return p")
        cypher = compile_giant_cypher(resolved)
        assert cypher.count("(p:proc)") == 1

    def test_return_aliases(self):
        resolved = resolve("proc p ->[read] file f return distinct p, f")
        cypher = compile_giant_cypher(resolved)
        assert "RETURN DISTINCT p.exename AS p_exename" in cypher

    def test_executes_on_store(self, data_leak_store, data_leak_extraction):
        from repro.tbql.synthesis import SynthesisPlan, TBQLSynthesizer
        plan = SynthesisPlan(use_path_patterns=True, fuzzy_paths=False,
                             temporal_order=False)
        text = TBQLSynthesizer(plan).synthesize(
            data_leak_extraction.graph).text
        resolved = resolve(text)
        rows = data_leak_store.execute_cypher(compile_giant_cypher(resolved))
        assert len(rows) == 1
        assert rows[0]["p1_exename"] == "/bin/tar"

    def test_bare_value_filter_rejected_uncompiled(self):
        from repro.tbql.ast import BareValueFilter
        from repro.tbql.compiler_cypher import render_filter_cypher
        from repro.tbql.compiler_sql import render_filter
        with pytest.raises(TBQLSemanticError):
            render_filter(BareValueFilter("x"), "s", "e", [])
        with pytest.raises(TBQLSemanticError):
            render_filter_cypher(BareValueFilter("x"), "s", "e")
