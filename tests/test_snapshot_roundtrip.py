"""Snapshot round-trip tests: ingest -> save -> open -> identical results.

The persistence contract of the serving subsystem: a store reopened from a
snapshot directory must answer the full TBQL equivalence corpus with results
identical to the freshly ingested store it was saved from, expose the same
statistics, and refuse mutation (read-only reader connections).  The binary
graph snapshot format is exercised directly for versioning and corruption
handling.
"""

from __future__ import annotations

import json
import shutil
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.errors import StorageError
from repro.storage import DualStore
from repro.storage.dualstore import (SNAPSHOT_FORMAT_VERSION, SNAPSHOT_GRAPH,
                                     SNAPSHOT_MANIFEST)
from repro.storage.graph.graphdb import (GRAPH_SNAPSHOT_MAGIC,
                                         GRAPH_SNAPSHOT_VERSION,
                                         PropertyGraph)
from repro.storage.relational import RelationalStore
from repro.tbql.executor import TBQLExecutor

from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS


@pytest.fixture(scope="module")
def snapshot_dir(data_leak_events, tmp_path_factory):
    """A snapshot directory saved from a freshly ingested store."""
    directory = tmp_path_factory.mktemp("snapshots") / "data_leak"
    with DualStore() as store:
        store.load_events(data_leak_events)
        store.save(directory)
    return directory


@pytest.fixture(scope="module")
def reopened_store(snapshot_dir):
    store = DualStore.open(snapshot_dir)
    yield store
    store.close()


class TestRoundTrip:
    @pytest.mark.parametrize("text", EQUIVALENCE_CORPUS)
    def test_corpus_results_identical(self, data_leak_store, reopened_store,
                                      text):
        fresh = TBQLExecutor(data_leak_store).execute(text)
        warm = TBQLExecutor(reopened_store).execute(text)
        assert warm.rows == fresh.rows
        assert warm.matched_events == fresh.matched_events
        assert warm.per_pattern_matches == fresh.per_pattern_matches

    def test_counts_survive_round_trip(self, data_leak_store,
                                       reopened_store):
        fresh = data_leak_store.statistics()
        warm = reopened_store.statistics()
        for key in ("relational_entities", "relational_events",
                    "graph_nodes", "graph_edges"):
            assert warm[key] == fresh[key]

    def test_manifest_contents(self, snapshot_dir, reopened_store):
        manifest = json.loads(
            (snapshot_dir / SNAPSHOT_MANIFEST).read_text(encoding="utf-8"))
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert manifest["relational_events"] == \
            reopened_store.relational.count_events()
        assert manifest["graph_nodes"] == reopened_store.graph.num_nodes()

    def test_concurrent_reads_match_serial(self, reopened_store):
        executor = TBQLExecutor(reopened_store)
        serial = {text: executor.execute(text).rows
                  for text in EQUIVALENCE_CORPUS}

        def run(index):
            text = EQUIVALENCE_CORPUS[index % len(EQUIVALENCE_CORPUS)]
            return text, executor.execute(text).rows

        with ThreadPoolExecutor(max_workers=8) as pool:
            outcomes = list(pool.map(run, range(4 * len(EQUIVALENCE_CORPUS))))
        for text, rows in outcomes:
            assert rows == serial[text]

    def test_events_list_not_part_of_snapshot(self, reopened_store):
        # Raw events are not persisted — both query backends are.
        assert reopened_store.events() == []


class TestReadOnly:
    def test_load_events_refused(self, reopened_store, data_leak_events):
        with pytest.raises(StorageError, match="read-only"):
            reopened_store.load_events(data_leak_events)

    def test_relational_mutation_refused(self, reopened_store):
        with pytest.raises(StorageError, match="read-only"):
            reopened_store.relational.clear()
        with pytest.raises(StorageError, match="read-only"):
            reopened_store.relational.insert_rows([], [(1,) * 11])

    def test_read_only_flags(self, data_leak_store, reopened_store):
        assert reopened_store.read_only
        assert reopened_store.relational.read_only
        assert not data_leak_store.read_only

    def test_read_only_requires_a_file(self):
        with pytest.raises(StorageError, match="on-disk"):
            RelationalStore(None, read_only=True)


class TestSnapshotValidation:
    def test_open_rejects_missing_manifest(self, tmp_path):
        empty = tmp_path / "not_a_snapshot"
        empty.mkdir()
        with pytest.raises(StorageError, match="not a dual-store snapshot"):
            DualStore.open(empty)

    def test_open_rejects_newer_format_version(self, snapshot_dir, tmp_path):
        copy = tmp_path / "newer"
        shutil.copytree(snapshot_dir, copy)
        manifest_path = copy / SNAPSHOT_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StorageError, match="unsupported snapshot"):
            DualStore.open(copy)

    def test_open_rejects_count_mismatch(self, snapshot_dir, tmp_path):
        copy = tmp_path / "tampered"
        shutil.copytree(snapshot_dir, copy)
        manifest_path = copy / SNAPSHOT_MANIFEST
        manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
        manifest["graph_edges"] += 1
        manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
        with pytest.raises(StorageError, match="corrupt"):
            DualStore.open(copy)

    def test_open_missing_graph_file_maps_to_storage_error(self,
                                                           snapshot_dir,
                                                           tmp_path):
        copy = tmp_path / "no_graph"
        shutil.copytree(snapshot_dir, copy)
        (copy / SNAPSHOT_GRAPH).unlink()
        with pytest.raises(StorageError, match="cannot read"):
            DualStore.open(copy)

    def test_graph_load_rejects_bad_magic(self, tmp_path):
        bogus = tmp_path / "bogus.bin"
        bogus.write_bytes(b"NOTAGRAPH" + b"\x00" * 32)
        with pytest.raises(StorageError, match="not a property-graph"):
            PropertyGraph.load(bogus)

    def test_graph_load_rejects_newer_version(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node("proc", {"exename": "/bin/sh"})
        path = tmp_path / "graph.bin"
        graph.save(path)
        data = bytearray(path.read_bytes())
        offset = len(GRAPH_SNAPSHOT_MAGIC)
        data[offset:offset + 2] = (GRAPH_SNAPSHOT_VERSION + 1).to_bytes(
            2, "little")
        path.write_bytes(data)
        with pytest.raises(StorageError, match="unsupported graph snapshot"):
            PropertyGraph.load(path)

    def test_graph_load_rejects_truncation(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node("proc", {"exename": "/bin/sh"})
        graph.add_node("file", {"path": "/etc/passwd"})
        graph.add_edge(1, 2, "EVENT", {"operation": "read"})
        path = tmp_path / "graph.bin"
        graph.save(path)
        path.write_bytes(path.read_bytes()[:-7])
        with pytest.raises(StorageError, match="truncated"):
            PropertyGraph.load(path)


class TestGraphSnapshotFormat:
    def test_value_types_round_trip(self, tmp_path):
        graph = PropertyGraph()
        properties = {
            "none": None, "true": True, "false": False,
            "int": -42, "big": 2 ** 80, "float": 3.25,
            "str": "päth/✓", "zero": 0.0,
        }
        node_a = graph.add_node("proc", dict(properties,
                                             exename="/bin/tar"))
        node_b = graph.add_node("file", {"path": "/etc/passwd"})
        graph.add_edge(node_a, node_b, "EVENT",
                       {"operation": "read", "start_time": 12.5})
        path = tmp_path / "graph.bin"
        graph.save(path)
        loaded = PropertyGraph.load(path)
        assert loaded.num_nodes() == 2
        assert loaded.num_edges() == 1
        restored = loaded.node(node_a).properties
        for key, value in properties.items():
            assert restored[key] == value
            assert type(restored[key]) is type(value)

    def test_indexes_rebuilt_on_load(self, tmp_path):
        graph = PropertyGraph()
        node_a = graph.add_node("proc", {"exename": "/bin/tar"})
        node_b = graph.add_node("file", {"path": "/etc/passwd"})
        graph.add_edge(node_a, node_b, "EVENT", {"operation": "read"})
        path = tmp_path / "graph.bin"
        graph.save(path)
        loaded = PropertyGraph.load(path)
        assert [node.node_id for node in
                loaded.nodes_with_property("exename", "/bin/tar")] == [node_a]
        assert [edge.edge_id for edge in
                loaded.edges_with_property("operation", "read")] == [1]
        assert {node.node_id for node in loaded.nodes("file")} == {node_b}

    def test_id_counters_continue_after_load(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node("proc", {"exename": "/bin/tar"})
        path = tmp_path / "graph.bin"
        graph.save(path)
        loaded = PropertyGraph.load(path)
        assert loaded.add_node("file", {"path": "/tmp/x"}) == 2

    def test_unsnapshotable_value_rejected(self, tmp_path):
        graph = PropertyGraph()
        graph.add_node("proc", {"bad": object()})
        with pytest.raises(StorageError, match="unsnapshotable"):
            graph.save(tmp_path / "graph.bin")


class TestLifecycle:
    def test_snapshot_files_deletable_after_close(self, data_leak_events,
                                                  tmp_path):
        directory = tmp_path / "snap"
        with DualStore() as store:
            store.load_events(data_leak_events)
            store.save(directory)
        with DualStore.open(directory) as reopened:
            assert reopened.relational.count_events() > 0
        # Every connection is closed; CI can remove the directory.
        shutil.rmtree(directory)
        assert not directory.exists()

    def test_save_overwrites_previous_snapshot(self, tmp_path,
                                               data_leak_events):
        directory = tmp_path / "snap"
        with DualStore() as store:
            store.load_events(data_leak_events)
            store.save(directory)
            first = json.loads((directory / SNAPSHOT_MANIFEST).read_text(
                encoding="utf-8"))
            store.save(directory)
        second = json.loads((directory / SNAPSHOT_MANIFEST).read_text(
            encoding="utf-8"))
        assert second["relational_events"] == first["relational_events"]
        with DualStore.open(directory) as reopened:
            assert reopened.relational.count_events() == \
                first["relational_events"]

    def test_graph_snapshot_is_a_single_binary_file(self, snapshot_dir):
        payload = (snapshot_dir / SNAPSHOT_GRAPH).read_bytes()
        assert payload.startswith(GRAPH_SNAPSHOT_MAGIC)

    def test_cli_snapshot_command(self, tmp_path, capsys):
        from repro.audit.collector import AuditCollector, CollectorConfig
        from repro.audit.logfmt import format_log
        from repro.cli import main

        collector = AuditCollector(CollectorConfig(seed=3))
        proc = collector.spawn_process("/bin/tar")
        collector.read_file(proc, "/etc/passwd")
        log_path = tmp_path / "audit.log"
        log_path.write_text(format_log(collector.events()),
                            encoding="utf-8")
        out_dir = tmp_path / "snap"
        assert main(["snapshot", "--log", str(log_path),
                     "--out", str(out_dir)]) == 0
        assert "snapshot written" in capsys.readouterr().out
        with DualStore.open(out_dir) as store:
            assert store.relational.count_events() > 0
