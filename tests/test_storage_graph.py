"""Unit tests for the property graph store and graph construction."""

import pytest

from repro.audit.collector import AuditCollector
from repro.errors import StorageError
from repro.storage.graph import GraphStore, PropertyGraph, graph_from_events


class TestPropertyGraph:
    def test_add_and_fetch_nodes(self):
        graph = PropertyGraph()
        node_id = graph.add_node("proc", {"exename": "/bin/tar"})
        assert graph.node(node_id).get("exename") == "/bin/tar"
        assert graph.node(node_id).get("id") == node_id

    def test_duplicate_node_id_rejected(self):
        graph = PropertyGraph()
        graph.add_node("proc", node_id=1)
        with pytest.raises(StorageError):
            graph.add_node("proc", node_id=1)

    def test_edge_requires_existing_endpoints(self):
        graph = PropertyGraph()
        a = graph.add_node("proc")
        with pytest.raises(StorageError):
            graph.add_edge(a, 999, "EVENT")

    def test_unknown_node_raises(self):
        with pytest.raises(StorageError):
            PropertyGraph().node(5)

    def test_adjacency(self):
        graph = PropertyGraph()
        a = graph.add_node("proc")
        b = graph.add_node("file")
        edge = graph.add_edge(a, b, "EVENT", {"operation": "read"})
        assert [e.edge_id for e in graph.out_edges(a)] == [edge]
        assert [e.edge_id for e in graph.in_edges(b)] == [edge]
        assert graph.degree(a) == 1
        assert graph.degree(b) == 1

    def test_label_index(self):
        graph = PropertyGraph()
        graph.add_node("proc")
        graph.add_node("file")
        graph.add_node("file")
        assert len(list(graph.nodes("file"))) == 2
        assert len(list(graph.nodes())) == 3

    def test_property_index_lookup(self):
        graph = PropertyGraph()
        graph.add_node("proc", {"exename": "/bin/tar"})
        graph.add_node("proc", {"exename": "/bin/cp"})
        matches = graph.nodes_with_property("exename", "/bin/tar")
        assert len(matches) == 1

    def test_unindexed_property_lookup_scans(self):
        graph = PropertyGraph()
        graph.add_node("proc", {"cmdline": "tar cf x"})
        assert len(graph.nodes_with_property("cmdline", "tar cf x")) == 1

    def test_edge_property_index(self):
        graph = PropertyGraph()
        a = graph.add_node("proc")
        b = graph.add_node("file")
        graph.add_edge(a, b, "EVENT", {"operation": "read"})
        graph.add_edge(a, b, "EVENT", {"operation": "write"})
        assert len(graph.edges_with_property("operation", "read")) == 1

    def test_average_degree(self):
        graph = PropertyGraph()
        a = graph.add_node("proc")
        b = graph.add_node("file")
        graph.add_edge(a, b, "EVENT")
        assert graph.average_degree() == pytest.approx(0.5)
        assert PropertyGraph().average_degree() == 0.0

    def test_clear(self):
        graph = PropertyGraph()
        graph.add_node("proc")
        graph.clear()
        assert graph.num_nodes() == 0


class TestGraphFromEvents:
    def test_entities_become_nodes_events_become_edges(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/passwd", burst=2)
        collector.write_file(tar, "/tmp/upload.tar", burst=1)
        graph = graph_from_events(collector.events())
        assert graph.num_nodes() == 3      # tar, passwd, upload.tar
        assert graph.num_edges() == 3      # 2 reads + 1 write

    def test_node_labels_match_entity_types(self):
        collector = AuditCollector()
        curl = collector.spawn_process("/usr/bin/curl")
        collector.connect_ip(curl, "1.2.3.4")
        graph = graph_from_events(collector.events())
        labels = {node.label for node in graph.nodes()}
        assert labels == {"proc", "ip"}

    def test_edge_carries_event_attributes(self):
        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/passwd", burst=1)
        graph = graph_from_events(collector.events())
        edge = next(iter(graph.edges()))
        assert edge.get("operation") == "read"
        assert edge.get("start_time") > 0


class TestGraphStore:
    def test_load_and_execute(self, data_leak_events):
        store = GraphStore()
        count = store.load_events(data_leak_events)
        assert count == store.num_edges()
        rows = store.execute(
            "MATCH (p:proc)-[e:EVENT {operation: 'connect'}]->(i:ip) "
            "WHERE p.exename CONTAINS 'curl' RETURN DISTINCT i.dstip")
        assert {row["i.dstip"] for row in rows} == {"192.168.29.128"}

    def test_clear(self, data_leak_events):
        store = GraphStore()
        store.load_events(data_leak_events)
        store.clear()
        assert store.num_nodes() == 0
