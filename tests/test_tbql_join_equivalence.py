"""Equivalence and pushdown tests for the rewritten TBQL join engine.

The hash join must produce bit-identical results (rows, matched events,
DISTINCT semantics, ordering) to the seed's backtracking join, which is kept
as the ``join_strategy="backtracking"`` reference implementation.  The corpus
below covers multi-pattern queries with shared entities, ``with`` temporal
and attribute clauses, DISTINCT, variable-length path patterns, disconnected
patterns, and empty results.
"""

from __future__ import annotations

import pytest

from repro.audit.entities import (FileEntity, NetworkEntity, Operation,
                                  ProcessEntity, SystemEvent)
from repro.storage import DualStore
from repro.storage.relational import RelationalStore
from repro.tbql.compiler_cypher import compile_pattern_cypher
from repro.tbql.executor import (MAX_CANDIDATE_PUSHDOWN, PlanStep,
                                 TBQLExecutor, _canonical_key, _display_name)
from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import resolve_query

from .conftest import DATA_LEAK_EDGES

#: Multi-pattern TBQL corpus executed through both join strategies.
EQUIVALENCE_CORPUS = [
    # shared entity across two patterns
    'proc p["%/bin/tar%"] read file f as e1 '
    'proc p write file g as e2 return p, f, g',
    # three-pattern chain through a shared file entity
    'proc p write file shared["%/tmp/upload.tar%"] as e1 '
    'proc q["%/bin/bzip2%"] read file shared as e2 '
    'proc q write file out as e3 return p, q, out',
    # temporal before
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
    'proc q["%/usr/bin/curl%"] connect ip i as e2 '
    'with e1 before e2 return p, q, i.dstip',
    # temporal after (reversed, empty result expected)
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
    'proc q["%/usr/bin/curl%"] connect ip i as e2 '
    'with e1 after e2 return p, q',
    # attribute relation
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
    'proc q["%/bin/tar%"] write file g as e2 '
    'with p.pid = q.pid return p.pid, q.pid, g',
    # attribute relation, negative operator
    'proc p["%/bin/tar%"] read file f as e1 '
    'proc q["%/bin/bzip2%"] read file g as e2 '
    'with p.pid != q.pid return distinct p, q',
    # DISTINCT collapse vs raw duplicates (same query, no distinct)
    'proc p["%/bin/tar%"] read || write file f as e1 '
    'proc p read file g as e2 return distinct p',
    'proc p["%/bin/tar%"] read || write file f as e1 '
    'proc p read file g as e2 return p',
    # variable-length path pattern mixed with an event pattern
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
    'proc q["%/usr/bin/curl%"] ~>(1~2)[connect] ip i as e2 '
    'return distinct p, i.dstip',
    # disconnected patterns (cross product, kept small by the filters)
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
    'proc q["%/usr/bin/gpg%"] write file g as e2 return p, q, g',
    # no match at all
    'proc p["%/bin/nonexistent%"] read file f as e1 '
    'proc p write file g as e2 return p, f, g',
    # --- TBQL v2 operators (appended: earlier [:N] slices stay stable) ---
    # sequence operator (unbounded gap)
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
    'then proc q["%/usr/bin/curl%"] connect ip i return p, q, i.dstip',
    # bounded sequence with a tight gap
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
    'then[1 sec] proc q["%/usr/bin/curl%"] connect ip i return p, q',
    # absence pattern that holds (tar never connects)
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
    'and not proc p connect ip i return p',
    # absence pattern that vetoes every row (curl does connect)
    'proc p["%/usr/bin/curl%"] read file f '
    'and not proc p connect ip i return p, f',
    # absence expressed as a graph path pattern
    'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
    'and not proc p ~>(1~2)[connect] ip i return p',
    # aggregation: top-N noisy processes
    'proc p read file f return p, count() group by p top 5',
    # aggregation with implicit grouping and a sequence
    'proc p read file f then proc p write file g '
    'return p.exename, count()',
]


def _execute_both(store, text, use_scheduler=True):
    hash_result = TBQLExecutor(store, use_scheduler=use_scheduler,
                               join_strategy="hash").execute(text)
    reference = TBQLExecutor(store, use_scheduler=use_scheduler,
                             join_strategy="backtracking").execute(text)
    return hash_result, reference


class TestJoinEquivalence:
    @pytest.mark.parametrize("text", EQUIVALENCE_CORPUS)
    def test_hash_join_matches_backtracking(self, data_leak_store, text):
        hash_result, reference = _execute_both(data_leak_store, text)
        assert hash_result.rows == reference.rows
        assert hash_result.matched_events == reference.matched_events

    @pytest.mark.parametrize("text", EQUIVALENCE_CORPUS)
    def test_equivalence_without_scheduler(self, data_leak_store, text):
        hash_result, reference = _execute_both(data_leak_store, text,
                                               use_scheduler=False)
        assert hash_result.rows == reference.rows
        assert hash_result.matched_events == reference.matched_events

    def test_figure2_query_both_strategies(self, data_leak_store,
                                           data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        text = synthesize_tbql(data_leak_extraction.graph).text
        hash_result, reference = _execute_both(data_leak_store, text)
        assert hash_result.rows == reference.rows
        assert hash_result.matched_events == reference.matched_events
        assert hash_result.matched_event_signatures == set(DATA_LEAK_EDGES)

    def test_unknown_join_strategy_rejected(self, data_leak_store):
        with pytest.raises(ValueError):
            TBQLExecutor(data_leak_store, join_strategy="nested-loop")


class TestStructuredPlan:
    def test_plan_steps_compare_as_pattern_ids(self, data_leak_store):
        result = TBQLExecutor(data_leak_store).execute(
            'proc p["%/bin/tar%"] read file f as e1 '
            'proc p write file g as e2 return p')
        assert all(isinstance(step, PlanStep) for step in result.plan)
        assert all(isinstance(step, str) for step in result.plan)
        assert sorted(result.plan) == ["e1", "e2"]
        assert " -> ".join(result.plan) in ("e1 -> e2", "e2 -> e1")

    def test_plan_records_candidates_and_rows(self, data_leak_store):
        result = TBQLExecutor(data_leak_store).execute(
            'proc p read file f as e1 '
            'proc p["%/bin/tar%"] read file g["%/etc/passwd%"] as e2 '
            'return distinct p, f, g')
        by_id = {step.pattern_id: step for step in result.plan}
        # The selective pattern runs first, unconstrained.
        assert result.plan[0] == "e2"
        assert by_id["e2"].subject_candidates is None
        assert by_id["e2"].backend == "sql"
        # The unselective pattern receives the candidate restriction and is
        # pruned at the data-query level, not post-hoc.
        assert by_id["e1"].pushed_subject
        assert by_id["e1"].subject_candidates == 1
        assert by_id["e1"].rows_in < 5
        assert by_id["e1"].rows_out == by_id["e1"].rows_in
        for step in result.plan:
            stats = step.as_dict()
            assert stats["pattern_id"] == str(step)
            assert "execute" in stats["seconds"]
        assert result.join_seconds >= 0.0

    def test_empty_candidates_short_circuit(self, data_leak_store):
        result = TBQLExecutor(data_leak_store).execute(
            'proc p["%/bin/nonexistent%"] read file f as e1 '
            'proc p write file g as e2 return p')
        by_id = {step.pattern_id: step for step in result.plan}
        assert by_id["e1"].rows_in == 0
        # Once p's candidate set is empty the second data query is skipped.
        assert by_id["e2"].rows_in == 0
        assert by_id["e2"].hydration_queries == 0
        assert result.rows == []


class TestBatchedHydration:
    def test_one_hydration_query_per_sql_pattern(self, data_leak_store,
                                                 monkeypatch):
        executor = TBQLExecutor(data_leak_store)
        hydrations = []
        original = RelationalStore.execute

        def counting_execute(self, sql, params=()):
            if "FROM entities WHERE id IN" in sql:
                hydrations.append(sql)
            return original(self, sql, params)

        monkeypatch.setattr(RelationalStore, "execute", counting_execute)
        result = executor.execute(
            'proc p["%/bin/tar%"] read file f as e1 '
            'proc q["%/bin/bzip2%"] read file g as e2 '
            'proc r["%/usr/bin/gpg%"] write file h as e3 return p, q, r')
        sql_steps = [step for step in result.plan if step.backend == "sql"]
        assert len(sql_steps) == 3
        # At most one entity-hydration query per pattern — never per row.
        assert len(hydrations) <= len(sql_steps)
        assert sum(step.hydration_queries for step in result.plan) == \
            len(hydrations)

    def test_entity_by_ids_batches_and_skips_missing(self):
        store = RelationalStore()
        tar = ProcessEntity(exename="/bin/tar", pid=7)
        passwd = FileEntity(path="/etc/passwd")
        store.load_events([SystemEvent(subject=tar, operation=Operation.READ,
                                       obj=passwd, start_time=1.0,
                                       end_time=1.5)])
        rows, statements = store.entity_by_ids([1, 2, 2, 999])
        assert set(rows) == {1, 2}
        assert statements == 1
        assert rows[1]["exename"] == "/bin/tar"
        assert rows[2]["path"] == "/etc/passwd"
        assert store.entity_by_ids([]) == ({}, 0)
        store.close()

    def test_entity_by_ids_chunks_large_inputs(self, monkeypatch):
        store = RelationalStore()
        tar = ProcessEntity(exename="/bin/tar", pid=7)
        passwd = FileEntity(path="/etc/passwd")
        store.load_events([SystemEvent(subject=tar, operation=Operation.READ,
                                       obj=passwd, start_time=1.0,
                                       end_time=1.5)])
        monkeypatch.setattr(RelationalStore, "BATCH_CHUNK_SIZE", 1)
        statements = []
        original = RelationalStore.execute

        def counting_execute(self, sql, params=()):
            statements.append(sql)
            return original(self, sql, params)

        monkeypatch.setattr(RelationalStore, "execute", counting_execute)
        rows, issued = store.entity_by_ids([1, 2])
        assert set(rows) == {1, 2}
        assert len(statements) == 2
        assert issued == 2
        store.close()


class TestCypherCandidatePushdown:
    def test_compile_pattern_cypher_injects_allowlists(self):
        resolved = resolve_query(parse_tbql(
            'proc p ~>(1~3)[read] file f return p'))
        cypher = compile_pattern_cypher(resolved.patterns[0], resolved,
                                        subject_candidates=[3, 1, 2],
                                        object_candidates=[9])
        assert "s.id IN [3, 1, 2]" in cypher
        assert "o.id IN [9]" in cypher

    def test_path_pattern_receives_candidates(self, data_leak_store):
        result = TBQLExecutor(data_leak_store).execute(
            'proc p["%/usr/bin/curl%"] read file f["%/tmp/upload%"] as e1 '
            'proc p ~>(1~2)[connect] ip i as e2 return distinct p, i.dstip')
        by_id = {step.pattern_id: step for step in result.plan}
        # The event pattern is more selective, so it runs first and its
        # bindings are pushed into the graph traversal.
        assert result.plan[0] == "e1"
        assert by_id["e2"].backend == "cypher"
        assert by_id["e2"].pushed_subject
        assert result.rows == [{"p.exename": "/usr/bin/curl",
                                "i.dstip": "192.168.29.128"}]

    def test_oversized_candidate_sets_not_pushed(self, data_leak_store,
                                                 monkeypatch):
        monkeypatch.setattr("repro.tbql.executor.MAX_CANDIDATE_PUSHDOWN", 0)
        assert MAX_CANDIDATE_PUSHDOWN > 0  # module constant itself untouched
        result = TBQLExecutor(data_leak_store).execute(
            'proc p read file f as e1 '
            'proc p["%/bin/tar%"] read file g["%/etc/passwd%"] as e2 '
            'return distinct p, f, g')
        by_id = {step.pattern_id: step for step in result.plan}
        # Pushdown disabled: the key post-filter still prunes correctly.
        assert not by_id["e1"].pushed_subject
        assert by_id["e1"].rows_in > by_id["e1"].rows_out
        assert len(result.rows) >= 1


class TestKeyNormalization:
    def test_file_key_and_display_share_precedence(self):
        path_only = {"type": "file", "path": "/etc/passwd", "name": None}
        name_only = {"type": "file", "path": None, "name": "/etc/passwd"}
        both = {"type": "file", "path": "/etc/passwd", "name": "passwd"}
        assert _canonical_key(path_only) == _canonical_key(name_only)
        assert _display_name(path_only) == _display_name(name_only)
        # path wins over name in both functions (path is the unique key).
        assert _canonical_key(both) == "file:/etc/passwd"
        assert _display_name(both) == "/etc/passwd"

    def test_reload_keeps_id_spaces_aligned(self):
        """A second load_events must not desync relational and graph ids.

        The graph backend rebuilds on every load while the relational one
        used to accumulate, so pushed-down id allowlists pointed at the
        wrong nodes after a reload; DualStore.load_events now clears the
        relational store to keep replace semantics on both backends.
        """
        store = DualStore(reduce=False)
        first = [SystemEvent(subject=ProcessEntity(exename=f"/bin/p{i}",
                                                   pid=100 + i),
                             operation=Operation.READ,
                             obj=FileEntity(path=f"/tmp/f{i}"),
                             start_time=float(i), end_time=float(i) + 0.5)
                 for i in range(4)]
        store.load_events(first)
        curl = ProcessEntity(exename="/usr/bin/curl2", pid=9)
        upload = FileEntity(path="/tmp/upload")
        store.load_events([
            SystemEvent(subject=curl, operation=Operation.READ, obj=upload,
                        start_time=1.0, end_time=1.5),
            SystemEvent(subject=curl, operation=Operation.CONNECT,
                        obj=NetworkEntity(srcip="10.0.0.2", srcport=40000,
                                          dstip="10.0.0.1", dstport=443),
                        start_time=2.0, end_time=2.5),
        ])
        assert store.relational.count_entities() == store.graph.num_nodes()
        result = TBQLExecutor(store).execute(
            'proc p["%curl2%"] read file f as e1 '
            'proc p ~>(1~2)[connect] ip i as e2 return distinct p, i.dstip')
        assert result.rows == [{"p.exename": "/usr/bin/curl2",
                                "i.dstip": "10.0.0.1"}]
        store.close()

    def test_epoch_zero_timestamps_survive_path_matches(self):
        store = DualStore(reduce=False)
        tar = ProcessEntity(exename="/bin/tar", pid=7)
        passwd = FileEntity(path="/etc/passwd")
        upload = FileEntity(path="/tmp/upload.tar")
        store.load_events([
            SystemEvent(subject=tar, operation=Operation.READ, obj=passwd,
                        start_time=0.0, end_time=0.0),
            SystemEvent(subject=tar, operation=Operation.WRITE, obj=upload,
                        start_time=5.0, end_time=6.0),
        ])
        result = TBQLExecutor(store).execute(
            'proc p ->[read] file f as e1 '
            'proc p ->[write] file g as e2 '
            'with e1 before e2 return p, f, g')
        # The epoch-0 read must not be treated as "missing timestamp": the
        # before-relation orders it ahead of the write and the row survives.
        assert result.rows == [{"p.exename": "/bin/tar",
                                "f.name": "/etc/passwd",
                                "g.name": "/tmp/upload.tar"}]
        read_events = [event for event in result.matched_events
                       if event["operation"] == "read"]
        assert read_events[0]["start_time"] == 0.0
        store.close()
