"""CLI help-surface audit: every subcommand and argument is documented.

Operators discover the tool through ``repro --help`` / ``repro <cmd>
--help``; an undocumented flag is effectively invisible.  These tests
walk the real parser tree so a new subcommand or argument cannot land
without help text, and pin the diagnostic output of the ``query`` and
``rules`` error paths.
"""

from __future__ import annotations

import argparse

import pytest

from repro.cli import build_parser


def _subcommands() -> dict[str, argparse.ArgumentParser]:
    parser = build_parser()
    subparsers = next(action for action in parser._actions
                      if isinstance(action, argparse._SubParsersAction))
    return dict(subparsers.choices)


class TestHelpSurface:
    def test_parser_has_description(self):
        assert build_parser().description

    def test_every_subcommand_has_help(self):
        parser = build_parser()
        subparsers = next(action for action in parser._actions
                          if isinstance(action, argparse._SubParsersAction))
        undocumented = [choice.dest
                        for choice in subparsers._choices_actions
                        if not choice.help]
        assert undocumented == []

    @pytest.mark.parametrize("name", sorted(_subcommands()))
    def test_every_argument_has_help(self, name):
        sub = _subcommands()[name]
        undocumented = [action.dest for action in sub._actions
                        if not isinstance(action, argparse._HelpAction)
                        and not action.help]
        assert undocumented == [], \
            f"repro {name}: arguments without help text"

    def test_expected_subcommands_present(self):
        assert set(_subcommands()) == {
            "extract", "synthesize", "hunt", "query", "ingest",
            "snapshot", "segments", "compact", "serve", "tail", "rules"}


class TestQueryDiagnostics:
    def test_query_prints_caret_diagnostic(self, tmp_path, capsys):
        from repro.cli import main
        log = tmp_path / "audit.log"
        log.write_text("", encoding="utf-8")
        exit_code = main(["query", "--log", str(log),
                          "--tbql", "proc p read fil f return p"])
        assert exit_code == 2
        err = capsys.readouterr().err
        assert "invalid TBQL" in err
        assert "proc p read fil f return p" in err
        assert err.splitlines()[-1].strip() == "^"

    def test_rules_prints_caret_diagnostic(self, capsys):
        from repro.cli import main
        exit_code = main(["rules",
                          "--tbql", "proc p read fil f return p"])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "invalid:" in out
        assert "proc p read fil f return p" in out
        assert out.splitlines()[-1].strip() == "^"

    def test_rules_directory_lists_diagnostics(self, tmp_path, capsys):
        from repro.cli import main
        (tmp_path / "good.tbql").write_text(
            "proc p read file f return p\n", encoding="utf-8")
        (tmp_path / "bad.tbql").write_text(
            "proc p read file f return p,\n", encoding="utf-8")
        exit_code = main(["rules", "--dir", str(tmp_path)])
        assert exit_code == 1
        out = capsys.readouterr().out
        assert "1/2 rule(s) valid" in out
        assert "^" in out
