"""Unit tests for TBQL query synthesis from threat behavior graphs."""

import pytest

from repro.errors import SynthesisError
from repro.extraction.behavior_graph import (BehaviorEdge, BehaviorNode,
                                             ThreatBehaviorGraph)
from repro.extraction.ioc import IOCType
from repro.tbql.parser import parse_tbql
from repro.tbql.semantics import resolve_query
from repro.tbql.synthesis import (SynthesisPlan, TBQLSynthesizer,
                                  synthesize_tbql)


def graph_of(nodes, edges):
    graph = ThreatBehaviorGraph()
    graph.nodes = [BehaviorNode(ioc=ioc, ioc_type=ioc_type)
                   for ioc, ioc_type in nodes]
    graph.edges = [BehaviorEdge(source=s, target=t, relation=r,
                                sequence=i + 1)
                   for i, (s, r, t) in enumerate(edges)]
    return graph


SIMPLE_GRAPH = graph_of(
    [("/bin/tar", IOCType.FILEPATH), ("/etc/passwd", IOCType.FILEPATH),
     ("192.168.29.128", IOCType.IP)],
    [("/bin/tar", "read", "/etc/passwd"),
     ("/bin/tar", "connect", "192.168.29.128")])


class TestDefaultPlan:
    def test_event_patterns_and_wildcards(self):
        result = synthesize_tbql(SIMPLE_GRAPH)
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' \
            in result.text
        assert result.pattern_count == 2

    def test_temporal_order_clause(self):
        result = synthesize_tbql(SIMPLE_GRAPH)
        assert "with evt1 before evt2" in result.text

    def test_return_clause_lists_all_entities(self):
        result = synthesize_tbql(SIMPLE_GRAPH)
        assert result.text.splitlines()[-1].startswith("return distinct ")

    def test_network_attribute_without_wildcards(self):
        result = synthesize_tbql(SIMPLE_GRAPH)
        assert 'ip i1["192.168.29.128"]' in result.text

    def test_output_parses_and_resolves(self):
        result = synthesize_tbql(SIMPLE_GRAPH)
        resolved = resolve_query(parse_tbql(result.text))
        assert len(resolved.patterns) == 2
        assert resolved.distinct

    def test_entity_id_reuse_for_repeated_file(self):
        graph = graph_of(
            [("/bin/tar", IOCType.FILEPATH), ("/bin/bzip2", IOCType.FILEPATH),
             ("/tmp/upload.tar", IOCType.FILEPATH)],
            [("/bin/tar", "write", "/tmp/upload.tar"),
             ("/bin/bzip2", "read", "/tmp/upload.tar")])
        text = synthesize_tbql(graph).text
        assert text.count('"%/tmp/upload.tar%"') == 1
        assert "read file f1 as evt2" in text

    def test_network_entities_not_reused(self):
        graph = graph_of(
            [("/bin/a", IOCType.FILEPATH), ("/bin/b", IOCType.FILEPATH),
             ("1.2.3.4", IOCType.IP)],
            [("/bin/a", "connect", "1.2.3.4"),
             ("/bin/b", "connect", "1.2.3.4")])
        text = synthesize_tbql(graph).text
        assert 'i1["1.2.3.4"]' in text and 'i2["1.2.3.4"]' in text


class TestScreeningAndMapping:
    def test_unauditable_nodes_screened_out(self):
        graph = graph_of(
            [("/bin/tar", IOCType.FILEPATH),
             ("http://evil.com/x", IOCType.URL),
             ("/etc/passwd", IOCType.FILEPATH)],
            [("/bin/tar", "download", "http://evil.com/x"),
             ("/bin/tar", "read", "/etc/passwd")])
        result = synthesize_tbql(graph)
        assert result.pattern_count == 1
        assert "http" not in result.text
        assert len(result.skipped_edges) == 1
        assert "http://evil.com/x" in result.skipped_nodes

    def test_download_to_file_becomes_write(self):
        graph = graph_of([("/usr/bin/wget", IOCType.FILEPATH),
                          ("/tmp/john", IOCType.FILEPATH)],
                         [("/usr/bin/wget", "download", "/tmp/john")])
        assert " write file " in synthesize_tbql(graph).text

    def test_download_from_ip_becomes_receive(self):
        graph = graph_of([("/usr/bin/wget", IOCType.FILEPATH),
                          ("1.2.3.4", IOCType.IP)],
                         [("/usr/bin/wget", "download", "1.2.3.4")])
        assert " receive ip " in synthesize_tbql(graph).text

    def test_exfiltration_verbs_to_ip_become_send(self):
        graph = graph_of([("/bin/nc", IOCType.FILEPATH),
                          ("1.2.3.4", IOCType.IP)],
                         [("/bin/nc", "exfiltrate", "1.2.3.4")])
        assert " send ip " in synthesize_tbql(graph).text

    def test_run_relation_becomes_execute_file(self):
        graph = graph_of([("/home/admin/cache", IOCType.FILEPATH)],
                         [("/home/admin/cache", "run", "/home/admin/cache")])
        assert " execute file " in synthesize_tbql(graph).text

    def test_unmappable_relation_skipped(self):
        graph = graph_of([("/bin/tar", IOCType.FILEPATH),
                          ("/etc/passwd", IOCType.FILEPATH)],
                         [("/bin/tar", "contemplate", "/etc/passwd"),
                          ("/bin/tar", "read", "/etc/passwd")])
        result = synthesize_tbql(graph)
        assert result.pattern_count == 1

    def test_ip_source_edge_skipped(self):
        graph = graph_of([("1.2.3.4", IOCType.IP),
                          ("/tmp/x", IOCType.FILEPATH)],
                         [("1.2.3.4", "write", "/tmp/x"),
                          ("/tmp/x", "read", "/tmp/x")])
        result = synthesize_tbql(graph)
        # The edge whose source is an IP cannot be expressed (a connection
        # is never the subject of a system event) and is screened out.
        assert len(result.skipped_edges) == 1
        assert result.skipped_edges[0].source == "1.2.3.4"
        assert result.pattern_count == 1

    def test_empty_graph_raises(self):
        with pytest.raises(SynthesisError):
            synthesize_tbql(graph_of([], []))

    def test_fully_screened_graph_raises(self):
        graph = graph_of([("http://a", IOCType.URL),
                          ("b.com", IOCType.DOMAIN)],
                         [("http://a", "connect", "b.com")])
        with pytest.raises(SynthesisError):
            synthesize_tbql(graph)


class TestCustomPlans:
    def test_path_pattern_plan(self):
        plan = SynthesisPlan(use_path_patterns=True, fuzzy_paths=True,
                             max_path_length=3)
        text = TBQLSynthesizer(plan).synthesize(SIMPLE_GRAPH).text
        assert "~>(~3)[read]" in text
        assert "with " not in text          # no temporal clause for paths

    def test_length1_path_plan(self):
        plan = SynthesisPlan(use_path_patterns=True, fuzzy_paths=False)
        text = TBQLSynthesizer(plan).synthesize(SIMPLE_GRAPH).text
        assert "->[read]" in text

    def test_no_wildcards_plan(self):
        plan = SynthesisPlan(wildcards=False)
        text = TBQLSynthesizer(plan).synthesize(SIMPLE_GRAPH).text
        assert '"%/bin/tar%"' not in text
        assert '"/bin/tar"' in text

    def test_global_clauses_prepended(self):
        plan = SynthesisPlan(global_clauses=["last 2 hours"])
        text = TBQLSynthesizer(plan).synthesize(SIMPLE_GRAPH).text
        assert text.startswith("last 2 hours")
        resolve_query(parse_tbql(text), now=1_000_000.0)

    def test_no_temporal_plan(self):
        plan = SynthesisPlan(temporal_order=False)
        text = TBQLSynthesizer(plan).synthesize(SIMPLE_GRAPH).text
        assert "with" not in text

    def test_path_plan_parses_and_resolves(self):
        plan = SynthesisPlan(use_path_patterns=True, fuzzy_paths=False)
        text = TBQLSynthesizer(plan).synthesize(SIMPLE_GRAPH).text
        resolved = resolve_query(parse_tbql(text))
        assert all(p.is_path for p in resolved.patterns)


class TestEndToEndSynthesis:
    def test_figure2_synthesis(self, data_leak_extraction):
        result = synthesize_tbql(data_leak_extraction.graph)
        assert result.pattern_count == 8
        assert 'proc p1["%/bin/tar%"] read file f1["%/etc/passwd%"] as evt1' \
            in result.text
        assert 'connect ip i1["192.168.29.128"] as evt8' in result.text
        assert "with evt1 before evt2" in result.text
        resolved = resolve_query(parse_tbql(result.text))
        assert len(resolved.patterns) == 8
