"""Unit and property-based tests for data reduction (Section III-B)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.collector import AuditCollector, CollectorConfig
from repro.audit.entities import (FileEntity, Operation, ProcessEntity,
                                  SystemEvent)
from repro.audit.reduction import (DEFAULT_MERGE_THRESHOLD, StreamingReducer,
                                   mergeable, reduce_events,
                                   reduce_events_stream, sweep_thresholds)


def _event(start, end, operation=Operation.READ, pid=1, path="/tmp/a",
           data=10):
    return SystemEvent(subject=ProcessEntity(exename="/bin/cat", pid=pid),
                       operation=operation,
                       obj=FileEntity(path=path),
                       start_time=start, end_time=end, data_amount=data)


class TestMergeable:
    def test_same_pair_within_threshold(self):
        assert mergeable(_event(0.0, 1.0), _event(1.5, 2.0))

    def test_gap_exactly_threshold(self):
        assert mergeable(_event(0.0, 1.0), _event(2.0, 2.5))

    def test_gap_above_threshold(self):
        assert not mergeable(_event(0.0, 1.0), _event(2.1, 2.5))

    def test_negative_gap_not_mergeable(self):
        assert not mergeable(_event(0.0, 2.0), _event(1.0, 3.0))

    def test_different_operation_not_mergeable(self):
        assert not mergeable(_event(0.0, 1.0),
                             _event(1.1, 1.2, operation=Operation.WRITE))

    def test_different_subject_not_mergeable(self):
        assert not mergeable(_event(0.0, 1.0), _event(1.1, 1.2, pid=2))

    def test_different_object_not_mergeable(self):
        assert not mergeable(_event(0.0, 1.0),
                             _event(1.1, 1.2, path="/tmp/b"))


class TestReduceEvents:
    def test_burst_collapses_to_single_event(self):
        burst = [_event(i * 0.1, i * 0.1 + 0.05) for i in range(10)]
        reduced, stats = reduce_events(burst)
        assert len(reduced) == 1
        assert stats.merged_events == 9
        assert stats.reduction_ratio == pytest.approx(10.0)
        assert reduced[0].data_amount == 100
        assert reduced[0].start_time == pytest.approx(0.0)
        assert reduced[0].end_time == pytest.approx(0.95)

    def test_interleaved_pairs_merge_independently(self):
        events = []
        for i in range(5):
            events.append(_event(i * 0.2, i * 0.2 + 0.01, path="/tmp/a"))
            events.append(_event(i * 0.2 + 0.05, i * 0.2 + 0.06,
                                 path="/tmp/b"))
        reduced, _stats = reduce_events(events)
        assert len(reduced) == 2

    def test_gap_larger_than_threshold_keeps_events(self):
        events = [_event(0.0, 0.1), _event(10.0, 10.1)]
        reduced, stats = reduce_events(events)
        assert len(reduced) == 2
        assert stats.merged_events == 0

    def test_empty_input(self):
        reduced, stats = reduce_events([])
        assert reduced == []
        assert stats.reduction_ratio == 1.0

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            reduce_events([], threshold=-1.0)

    def test_collector_bursts_are_reduced(self):
        collector = AuditCollector(CollectorConfig())
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/passwd", burst=8)
        reduced, stats = reduce_events(collector.events())
        assert len(reduced) == 1
        assert stats.input_events == 8

    def test_sweep_thresholds_monotone(self):
        events = [_event(i * 0.6, i * 0.6 + 0.1) for i in range(10)]
        results = sweep_thresholds(events, [0.0, 0.5, 1.0, 5.0])
        outputs = [results[t].output_events for t in [0.0, 0.5, 1.0, 5.0]]
        assert outputs == sorted(outputs, reverse=True)

    def test_default_threshold_is_one_second(self):
        assert DEFAULT_MERGE_THRESHOLD == 1.0


class TestStreamingReducer:
    def _sorted(self, events):
        return sorted(events, key=lambda e: (e.start_time, e.event_id))

    def test_burst_collapses_like_batch(self):
        burst = [_event(i * 0.1, i * 0.1 + 0.05) for i in range(10)]
        streamed = list(reduce_events_stream(self._sorted(burst)))
        assert len(streamed) == 1
        assert streamed[0].data_amount == 100

    def test_closed_runs_are_evicted_early(self):
        # Ten far-apart runs on distinct keys: every push past the merge
        # window must evict, keeping the working set at one open run.
        reducer = StreamingReducer()
        emitted = []
        for i in range(10):
            emitted += list(reducer.push(_event(i * 100.0, i * 100.0 + 0.1,
                                                path=f"/tmp/{i}")))
            assert reducer.open_runs == 1
        emitted += list(reducer.flush())
        assert len(emitted) == 10
        assert reducer.open_runs == 0

    def test_out_of_order_input_rejected(self):
        reducer = StreamingReducer()
        list(reducer.push(_event(5.0, 5.1)))
        with pytest.raises(ValueError):
            list(reducer.push(_event(1.0, 1.1)))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            StreamingReducer(threshold=-0.5)

    def test_conflicting_threshold_with_reducer_rejected(self):
        with pytest.raises(ValueError):
            list(reduce_events_stream([], threshold=5.0,
                                      reducer=StreamingReducer()))

    def test_stats_match_batch(self):
        events = [_event(i * 0.3, i * 0.3 + 0.1, path=f"/tmp/{i % 3}")
                  for i in range(20)]
        _reduced, batch_stats = reduce_events(events)
        reducer = StreamingReducer()
        streamed = list(reduce_events_stream(self._sorted(events),
                                             reducer=reducer))
        assert reducer.stats.input_events == batch_stats.input_events
        assert reducer.stats.output_events == batch_stats.output_events
        assert reducer.stats.merged_events == batch_stats.merged_events
        assert len(streamed) == batch_stats.output_events


# ---------------------------------------------------------------------------
# property-based tests
# ---------------------------------------------------------------------------

event_strategy = st.tuples(
    st.floats(min_value=0, max_value=100, allow_nan=False),   # start
    st.floats(min_value=0, max_value=5, allow_nan=False),     # duration
    st.sampled_from([Operation.READ, Operation.WRITE]),
    st.integers(min_value=1, max_value=3),                    # pid
    st.sampled_from(["/tmp/a", "/tmp/b"]),
    st.integers(min_value=0, max_value=100),                  # bytes
).map(lambda args: _event(args[0], args[0] + args[1], args[2], args[3],
                          args[4], args[5]))


class TestReductionProperties:
    @given(st.lists(event_strategy, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_never_increases_events_and_preserves_bytes(self, events):
        reduced, stats = reduce_events(events)
        assert len(reduced) <= len(events)
        assert stats.input_events == len(events)
        assert stats.output_events == len(reduced)
        assert sum(e.data_amount for e in reduced) == \
            sum(e.data_amount for e in events)

    @given(st.lists(event_strategy, max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_idempotent(self, events):
        reduced, _ = reduce_events(events)
        reduced_again, stats = reduce_events(reduced)
        assert len(reduced_again) == len(reduced)
        assert stats.merged_events == 0

    @given(st.lists(event_strategy, max_size=40),
           st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
    @settings(max_examples=60, deadline=None)
    def test_preserves_entity_pairs(self, events, threshold):
        reduced, _ = reduce_events(events, threshold)
        original_pairs = {(e.subject.unique_key, e.obj.unique_key,
                           e.operation) for e in events}
        reduced_pairs = {(e.subject.unique_key, e.obj.unique_key,
                          e.operation) for e in reduced}
        assert original_pairs == reduced_pairs

    @given(st.lists(event_strategy, max_size=40),
           st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
    @settings(max_examples=80, deadline=None)
    def test_streaming_equals_batch(self, events, threshold):
        """The streaming reducer's output is *identical* to the batch pass.

        Randomized interleaved streams across several entity pairs, merged
        at a random threshold: same events, same order, same statistics.
        """
        batch, batch_stats = reduce_events(events, threshold)
        ordered = sorted(events, key=lambda e: (e.start_time, e.event_id))
        reducer = StreamingReducer(threshold)
        streamed = list(reduce_events_stream(ordered, reducer=reducer))
        assert [(e.subject.unique_key, e.obj.unique_key, e.operation,
                 e.start_time, e.end_time, e.data_amount)
                for e in streamed] == \
               [(e.subject.unique_key, e.obj.unique_key, e.operation,
                 e.start_time, e.end_time, e.data_amount)
                for e in batch]
        assert reducer.stats.input_events == batch_stats.input_events
        assert reducer.stats.output_events == batch_stats.output_events
        assert reducer.stats.merged_events == batch_stats.merged_events

    @given(st.lists(event_strategy, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_zero_threshold_only_merges_touching_events(self, events):
        reduced, _ = reduce_events(events, threshold=0.0)
        # With threshold 0, merged spans only join events with no gap, so
        # every reduced event's span is covered by original events.
        for event in reduced:
            covering = [e for e in events
                        if e.subject.unique_key == event.subject.unique_key
                        and e.obj.unique_key == event.obj.unique_key
                        and e.operation == event.operation]
            assert any(e.start_time == event.start_time for e in covering)
            assert any(e.end_time == event.end_time for e in covering)
