"""Statistics-driven pruning, dictionary scans, and aggregate pushdown.

Covers the scan-optimizer stack end to end: seal-time segment statistics
(zone maps, distinct sets, entity-type presence), the conservative
pruning contract (property-based: a stats-pruned segment never holds a
row the reference scan returns), dictionary-accelerated string
predicates (sorted string table + binary-searched prefix ranges),
partial-aggregate pushdown equivalence, backward compatibility with
pre-stats v3 and v2 snapshots, and the observability surfaces
(``/stats`` pruning totals, ``repro_tbql_segments_pruned_total``).
"""

from __future__ import annotations

import json
from operator import attrgetter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit import AuditCollector, CollectorConfig, \
    generate_benign_noise
from repro.obs.metrics import MetricsRegistry, get_registry, set_registry
from repro.storage import DualStore
from repro.storage.columnar import ColumnarSegment, ascii_lower
from repro.storage.segments import (STATS_DISTINCT_COLUMNS,
                                    STATS_NUMERIC_COLUMNS, SegmentStats)
from repro.tbql.ast import (AttributeComparison, BooleanFilter,
                            MembershipFilter)
from repro.tbql.colscan import PatternSpec, scan_columnar
from repro.tbql.executor import TBQLExecutor
from repro.tbql.pruning import prune_by_stats, segment_may_match
from repro.tbql.semantics import resolve_query
from repro.tbql.parser import parse_tbql

from .conftest import record_data_leak_attack
from .promtext import parse_prometheus_text
from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS

#: Queries exercising the optimizer paths: selective predicates that
#: prune segments, LIKE/IN shapes the dictionary path accelerates, and
#: aggregations the pushdown distributes.
OPTIMIZER_CORPUS = [
    'proc p connect ip i return p, i.dstip',
    'proc p["%/bin/tar%"] read file f return p, f',
    'proc p["%gpg%"] write file f return p, f',
    'proc p read file f return p, count() group by p top 5',
    'proc p write file f return f, count() group by f top 3',
    'proc p read || write file f return count()',
]


def _corpus_events():
    collector = AuditCollector(CollectorConfig(seed=11))
    record_data_leak_attack(collector)
    events = collector.events() + generate_benign_noise(num_sessions=10,
                                                        seed=29)
    events.sort(key=attrgetter("start_time", "event_id"))
    return events


def _build_pair(batch_size=40):
    """(monolithic, segmented) stores fed identical batches/seals."""
    events = _corpus_events()
    mono = DualStore()
    seg = DualStore(layout="segmented")
    for index in range(0, len(events), batch_size):
        batch = events[index:index + batch_size]
        for store in (mono, seg):
            store.append_events(batch)
            store.flush_appends()
    return mono, seg


@pytest.fixture(scope="module")
def store_pair():
    mono, seg = _build_pair()
    yield mono, seg
    mono.close()
    seg.close()


# ---------------------------------------------------------------------------
# seal-time statistics
# ---------------------------------------------------------------------------


class TestSealTimeStats:
    def test_every_sealed_segment_carries_stats(self, store_pair):
        _mono, seg = store_pair
        view = seg.segment_view()
        assert view.sealed
        for info in view.sealed:
            assert isinstance(info.stats, SegmentStats)

    def test_stats_describe_the_stored_rows_exactly(self, store_pair):
        _mono, seg = store_pair
        for info in seg.segment_view().sealed:
            segment = ColumnarSegment(info.columnar_path)
            try:
                for column in STATS_NUMERIC_COLUMNS:
                    values = list(segment.column(f"event.{column}"))
                    assert info.stats.numeric[column] == \
                        (min(values), max(values))
                strings = segment.strings
                for column in STATS_DISTINCT_COLUMNS:
                    stored = {strings[code] for code
                              in set(segment.column(f"event.{column}"))
                              if code != 0}
                    assert set(info.stats.distinct[column]) == stored
            finally:
                segment.close()
            assert info.stats.subject_types
            assert info.stats.object_types

    def test_stats_survive_snapshot_roundtrip(self, store_pair, tmp_path):
        _mono, seg = store_pair
        before = [info.stats for info in seg.segment_view().sealed]
        seg.save(tmp_path / "snap")
        with DualStore.open(tmp_path / "snap") as reopened:
            after = [info.stats for info in reopened.segment_view().sealed]
        assert after == before

    def test_compaction_recomputes_stats_for_merged_segments(self):
        _mono, seg = _build_pair(batch_size=25)
        try:
            assert len(seg.segment_view().sealed) > 2
            seg.compact(min_events=10_000)
            merged = seg.segment_view().sealed
            assert len(merged) == 1
            stats = merged[0].stats
            assert isinstance(stats, SegmentStats)
            assert set(stats.numeric) == set(STATS_NUMERIC_COLUMNS)
        finally:
            _mono.close()
            seg.close()

    def test_stats_entry_parser_is_tolerant(self):
        assert SegmentStats.from_entry(None) is None
        assert SegmentStats.from_entry("garbage") is None
        assert SegmentStats.from_entry({"version": 999}) is None
        assert SegmentStats.from_entry({"version": 1,
                                        "numeric": "nope"}) is None
        entry = SegmentStats(numeric={"duration": (1.0, 2.0)},
                             distinct={"operation": ("read",)},
                             subject_types=("proc",),
                             object_types=("file",)).as_entry()
        assert SegmentStats.from_entry(
            json.loads(json.dumps(entry))) is not None


# ---------------------------------------------------------------------------
# conservativeness: pruned => provably empty (property-based)
# ---------------------------------------------------------------------------

_COMPARISON_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")
_OPERATION_VALUES = ("read", "write", "connect", "spawn", "recv", "exec")
_HOST_VALUES = ("host-0", "host-1", "HOST-0", "workstation-9",
                "host%", "%-0", "h_st-0", "")

_host_filter = st.builds(
    AttributeComparison, st.just("host"),
    st.sampled_from(_COMPARISON_OPERATORS), st.sampled_from(_HOST_VALUES))
_operation_filter = st.builds(
    AttributeComparison, st.just("operation"),
    st.sampled_from(("=", "!=")), st.sampled_from(_OPERATION_VALUES))
_numeric_filter = st.builds(
    AttributeComparison,
    st.sampled_from(("duration", "data_amount", "failure_code")),
    st.sampled_from(_COMPARISON_OPERATORS),
    st.one_of(st.integers(min_value=-2, max_value=1 << 32),
              st.floats(min_value=-10.0, max_value=1e10,
                        allow_nan=False)))
_membership_filter = st.builds(
    MembershipFilter, st.just("operation"),
    st.lists(st.sampled_from(_OPERATION_VALUES), min_size=1,
             max_size=3).map(tuple),
    st.booleans())
_leaf_filter = st.one_of(_host_filter, _operation_filter,
                         _numeric_filter, _membership_filter)
_pattern_filter = st.one_of(
    st.none(), _leaf_filter,
    st.builds(BooleanFilter, st.sampled_from(("&&", "||")),
              st.tuples(_leaf_filter, _leaf_filter)))

_spec = st.builds(
    PatternSpec,
    subject_type=st.sampled_from(("proc", "file", "ip")),
    object_type=st.sampled_from(("proc", "file", "ip")),
    operations=st.one_of(
        st.none(),
        st.lists(st.sampled_from(_OPERATION_VALUES), min_size=1,
                 max_size=3).map(lambda ops: tuple(sorted(set(ops))))),
    subject_filter=st.none(),
    object_filter=st.none(),
    pattern_filter=_pattern_filter,
    window=st.none(),
    subject_candidates=st.none(),
    object_candidates=st.none(),
    min_event_id=st.none())


class TestConservativePruning:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(spec=_spec)
    def test_pruned_segment_never_holds_a_matching_row(self, store_pair,
                                                       spec):
        """The contract stats pruning rests on: ``segment_may_match``
        returning False must imply the real scan returns zero rows."""
        _mono, seg = store_pair
        for info in seg.segment_view().sealed:
            if segment_may_match(info.stats, spec):
                continue
            segment = ColumnarSegment(info.columnar_path)
            try:
                assert scan_columnar(segment, spec)[0] == 0
            finally:
                segment.close()

    def test_disabled_via_environment(self, store_pair, monkeypatch):
        _mono, seg = store_pair
        sealed = seg.segment_view().sealed
        impossible = PatternSpec(
            subject_type="proc", object_type="file",
            operations=("no-such-operation",), subject_filter=None,
            object_filter=None, pattern_filter=None, window=None,
            subject_candidates=None, object_candidates=None)
        survivors, pruned = prune_by_stats(list(sealed), impossible)
        assert pruned == len(sealed) and not survivors
        monkeypatch.setenv("REPRO_TBQL_STATS_PRUNING", "0")
        survivors, pruned = prune_by_stats(list(sealed), impossible)
        assert pruned == 0 and len(survivors) == len(sealed)

    def test_stats_less_segments_always_survive(self, store_pair):
        _mono, seg = store_pair
        sealed = seg.segment_view().sealed
        impossible = PatternSpec(
            subject_type="proc", object_type="file",
            operations=("no-such-operation",), subject_filter=None,
            object_filter=None, pattern_filter=None, window=None,
            subject_candidates=None, object_candidates=None)
        assert segment_may_match(None, impossible)
        stripped = [info.__class__(**{**info.__dict__, "stats": None})
                    for info in sealed]
        survivors, pruned = prune_by_stats(stripped, impossible)
        assert pruned == 0 and len(survivors) == len(sealed)


# ---------------------------------------------------------------------------
# dictionary-accelerated string predicates
# ---------------------------------------------------------------------------


class TestDictionaryPredicates:
    def test_string_table_is_sorted_case_insensitively(self, store_pair):
        _mono, seg = store_pair
        info = seg.segment_view().sealed[0]
        segment = ColumnarSegment(info.columnar_path)
        try:
            assert segment.sorted_strings
            keys = [(ascii_lower(text), text)
                    for text in segment.strings[1:]]
            assert keys == sorted(keys)
        finally:
            segment.close()

    @pytest.mark.parametrize("prefix", ["/bin/", "/etc/p", "/BIN/", "h",
                                        "", "zzzz", "/tmp/upload.tar"])
    def test_prefix_code_range_matches_linear_scan(self, store_pair,
                                                   prefix):
        _mono, seg = store_pair
        info = seg.segment_view().sealed[0]
        segment = ColumnarSegment(info.columnar_path)
        try:
            found = segment.prefix_code_range(prefix)
            assert found is not None
            low, high = found
            reference = {code for code in range(1, len(segment.strings))
                         if ascii_lower(segment.strings[code])
                         .startswith(ascii_lower(prefix))}
            assert set(range(low, high)) == reference
        finally:
            segment.close()

    def test_dictionary_toggle_preserves_results(self, store_pair,
                                                 monkeypatch):
        mono, seg = store_pair
        reference = TBQLExecutor(mono)
        expected = [reference.execute(text) for text in EQUIVALENCE_CORPUS]
        for dict_enabled in ("1", "0"):
            monkeypatch.setenv("REPRO_COLSCAN_DICT", dict_enabled)
            executor = TBQLExecutor(seg)
            for text, want in zip(EQUIVALENCE_CORPUS, expected):
                got = executor.execute(text)
                assert got.rows == want.rows, (dict_enabled, text)
                assert got.matched_events == want.matched_events, \
                    (dict_enabled, text)


# ---------------------------------------------------------------------------
# partial-aggregate pushdown
# ---------------------------------------------------------------------------


class TestAggregatePushdown:
    AGG = 'proc p read file f return p, count() group by p top 5'

    def test_pushdown_fires_and_matches_every_reference(self, store_pair):
        mono, seg = store_pair
        want = TBQLExecutor(mono).execute(self.AGG)
        for workers in (1, 4):
            executor = TBQLExecutor(seg, workers=workers)
            try:
                got = executor.execute(self.AGG)
            finally:
                executor.close()
            step = got.plan[0]
            assert step.aggregate_pushdown
            assert step.segments_scanned is not None
            assert got.rows == want.rows
            assert got.matched_events == want.matched_events
            assert got.joined_events == want.joined_events
            assert got.per_pattern_matches == want.per_pattern_matches

    def test_environment_gate_restores_ordinary_path(self, store_pair,
                                                     monkeypatch):
        _mono, seg = store_pair
        pushed = TBQLExecutor(seg).execute(self.AGG)
        assert pushed.plan[0].aggregate_pushdown
        monkeypatch.setenv("REPRO_TBQL_AGG_PUSHDOWN", "0")
        plain = TBQLExecutor(seg).execute(self.AGG)
        assert not plain.plan[0].aggregate_pushdown
        assert plain.rows == pushed.rows
        assert plain.matched_events == pushed.matched_events
        assert plain.joined_events == pushed.joined_events

    def test_multi_pattern_and_reference_strategies_fall_back(
            self, store_pair):
        _mono, seg = store_pair
        sequence = ('proc p read file f then proc p write file g '
                    'return p.exename, count()')
        result = TBQLExecutor(seg).execute(sequence)
        assert not any(step.aggregate_pushdown for step in result.plan)
        sqlite_exec = TBQLExecutor(seg, scan_strategy="sqlite")
        result = sqlite_exec.execute(self.AGG)
        assert not any(step.aggregate_pushdown for step in result.plan)
        scan_agg = TBQLExecutor(seg, aggregation_strategy="scan")
        result = scan_agg.execute(self.AGG)
        assert not any(step.aggregate_pushdown for step in result.plan)

    def test_monolithic_store_never_pushes_down(self, store_pair):
        mono, _seg = store_pair
        result = TBQLExecutor(mono).execute(self.AGG)
        assert not any(step.aggregate_pushdown for step in result.plan)


# ---------------------------------------------------------------------------
# optimizer corpus equivalence (everything on, everything off)
# ---------------------------------------------------------------------------


class TestOptimizerEquivalence:
    def test_corpus_identical_with_and_without_optimizations(
            self, store_pair, monkeypatch):
        mono, seg = store_pair
        reference = TBQLExecutor(mono)
        expected = [reference.execute(text) for text in OPTIMIZER_CORPUS]
        for disabled in (False, True):
            if disabled:
                monkeypatch.setenv("REPRO_TBQL_STATS_PRUNING", "0")
                monkeypatch.setenv("REPRO_COLSCAN_DICT", "0")
                monkeypatch.setenv("REPRO_TBQL_AGG_PUSHDOWN", "0")
            for strategy in ("columnar", "sqlite"):
                executor = TBQLExecutor(seg, scan_strategy=strategy)
                for text, want in zip(OPTIMIZER_CORPUS, expected):
                    got = executor.execute(text)
                    assert got.rows == want.rows, (disabled, strategy, text)
                    assert got.matched_events == want.matched_events, \
                        (disabled, strategy, text)

    def test_sqlite_strategy_reports_no_stats_pruning(self, store_pair):
        _mono, seg = store_pair
        executor = TBQLExecutor(seg, scan_strategy="sqlite")
        result = executor.execute('proc p connect ip i return p')
        step = result.plan[0]
        assert step.segments_scanned is not None
        assert step.segments_pruned_by_stats is None

    def test_columnar_strategy_prunes_selective_patterns(self,
                                                         store_pair):
        mono, seg = store_pair
        executor = TBQLExecutor(seg)
        text = 'proc p["%/bin/tar%"] read file f["/etc/passwd"] return p'
        result = executor.execute(text)
        step = result.plan[0]
        assert step.segments_pruned_by_stats is not None
        assert step.segments_pruned_by_stats > 0
        assert result.rows == TBQLExecutor(mono).execute(text).rows
        totals = executor.pruning_totals
        assert totals["segments_pruned_by_stats"] >= \
            step.segments_pruned_by_stats


# ---------------------------------------------------------------------------
# backward compatibility: pre-stats v3 and v2 snapshots
# ---------------------------------------------------------------------------


def _strip_stats(snapshot) -> None:
    """Rewrite a snapshot as one sealed before statistics existed."""
    manifest_path = snapshot / "manifest.json"
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    for entry in manifest.get("segments", []):
        entry.pop("stats", None)
    manifest_path.write_text(json.dumps(manifest), encoding="utf-8")
    for segment_manifest in snapshot.glob("segments/*/segment.json"):
        entry = json.loads(segment_manifest.read_text(encoding="utf-8"))
        entry.pop("stats", None)
        segment_manifest.write_text(json.dumps(entry), encoding="utf-8")


class TestBackwardCompatibility:
    CORPUS = EQUIVALENCE_CORPUS[:4] + OPTIMIZER_CORPUS

    def _expected(self, mono):
        return [TBQLExecutor(mono).execute(text) for text in self.CORPUS]

    def _assert_identical_without_stats(self, snapshot, expected):
        with DualStore.open(snapshot) as reopened:
            view = reopened.segment_view()
            assert view.sealed
            assert all(info.stats is None for info in view.sealed)
            executor = TBQLExecutor(reopened)
            for text, want in zip(self.CORPUS, expected):
                got = executor.execute(text)
                assert got.rows == want.rows, text
                assert got.matched_events == want.matched_events, text
                for step in got.plan:
                    if step.segments_pruned_by_stats is not None:
                        assert step.segments_pruned_by_stats == 0
            assert executor.pruning_totals[
                "segments_pruned_by_stats"] == 0

    def test_prestats_v3_snapshot_opens_and_answers(self, store_pair,
                                                    tmp_path):
        mono, seg = store_pair
        snapshot = tmp_path / "prestats"
        seg.save(snapshot)
        _strip_stats(snapshot)
        self._assert_identical_without_stats(snapshot,
                                             self._expected(mono))

    def test_v2_snapshot_opens_and_answers(self, store_pair, tmp_path):
        mono, seg = store_pair
        snapshot = tmp_path / "v2"
        seg.save(snapshot)
        _strip_stats(snapshot)
        for payload in snapshot.glob("segments/*/events.col"):
            payload.unlink()
        manifest_path = snapshot / "manifest.json"
        manifest = manifest_path.read_text(encoding="utf-8")
        assert '"format_version": 3' in manifest
        manifest_path.write_text(
            manifest.replace('"format_version": 3',
                             '"format_version": 2'), encoding="utf-8")
        self._assert_identical_without_stats(snapshot,
                                             self._expected(mono))


# ---------------------------------------------------------------------------
# observability surfaces
# ---------------------------------------------------------------------------


class TestObservability:
    def test_pruning_metrics_render_validly(self, store_pair):
        _mono, seg = store_pair
        previous = set_registry(MetricsRegistry())
        try:
            executor = TBQLExecutor(seg)
            executor.execute('proc p connect ip i return p')
            executor.execute(TestAggregatePushdown.AGG)
            text = get_registry().render()
        finally:
            set_registry(previous)
        families = parse_prometheus_text(text)
        pruned = families["repro_tbql_segments_pruned_total"]
        assert pruned["type"] == "counter"
        reasons = {labels["reason"]
                   for _name, labels, _value in pruned["samples"]}
        assert reasons == {"time", "stats"}
        fraction = families["repro_tbql_segments_pruned_fraction"]
        assert fraction["type"] == "histogram"
        counts = [value for name, labels, value in fraction["samples"]
                  if name.endswith("_count")]
        assert counts and counts[0] >= 2

    def test_service_stats_expose_pruning_totals(self, store_pair,
                                                 tmp_path):
        from repro.service import QueryService

        _mono, seg = store_pair
        snapshot = tmp_path / "svc"
        seg.save(snapshot)
        with DualStore.open(snapshot) as store:
            service = QueryService(store)
            service.query('proc p connect ip i return p')
            payload = service.stats()
            pruning = payload["segments"]["pruning"]
            assert set(pruning) == {"segments_scanned",
                                    "segments_pruned_by_time",
                                    "segments_pruned_by_stats"}
            assert pruning["segments_scanned"] > 0

    def test_query_payload_carries_stats_pruning(self, store_pair,
                                                 tmp_path):
        from repro.service.server import result_payload

        _mono, seg = store_pair
        result = TBQLExecutor(seg).execute(
            'proc p connect ip i return p')
        payload = result_payload(result)
        step = payload["plan"][0]
        assert "segments_pruned_by_stats" in step
        assert "aggregate_pushdown" in step

    def test_resolved_aggregate_query_parses(self):
        resolved = resolve_query(parse_tbql(TestAggregatePushdown.AGG))
        assert resolved.aggregation is not None
        assert resolved.aggregation.group_by
