"""Equivalence tests for the incremental (streaming) ingestion path.

The flagship guarantee: appending a log in K batches yields backends — and
therefore TBQL results — *byte-identical* to a one-shot ``load_events`` of
the full log.  Merge runs that span batch boundaries must keep merging,
entity/event ids must continue seamlessly, and ``data_version`` must bump
per stored batch so the caches above invalidate.
"""

from __future__ import annotations

import json
from operator import attrgetter

import pytest

from repro.audit import AuditCollector, CollectorConfig, generate_benign_noise
from repro.audit.entities import FileEntity, Operation, ProcessEntity, \
    SystemEvent
from repro.errors import StorageError
from repro.service import result_payload
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS


def _ordered(events):
    return sorted(events, key=attrgetter("start_time", "event_id"))


def _chunks(items, count):
    size = (len(items) + count - 1) // count
    return [items[index:index + size] for index in range(0, len(items),
                                                         size)]


def _assert_stores_identical(left: DualStore, right: DualStore) -> None:
    for sql in ("SELECT * FROM entities ORDER BY id",
                "SELECT * FROM events ORDER BY id"):
        assert left.execute_sql(sql) == right.execute_sql(sql)
    lgraph, rgraph = left.graph.graph, right.graph.graph
    assert lgraph.num_nodes() == rgraph.num_nodes()
    assert lgraph.num_edges() == rgraph.num_edges()
    for node_id in range(1, lgraph.num_nodes() + 1):
        a, b = lgraph.node(node_id), rgraph.node(node_id)
        assert (a.label, a.properties) == (b.label, b.properties)
    for edge_id in range(1, lgraph.num_edges() + 1):
        a, b = lgraph.edge(edge_id), rgraph.edge(edge_id)
        assert (a.source, a.target, a.label, a.properties) == \
            (b.source, b.target, b.label, b.properties)


@pytest.fixture(scope="module")
def stream_events(data_leak_events):
    """The data-leak corpus events in stream (event-time) order."""
    return _ordered(data_leak_events)


@pytest.fixture(scope="module")
def one_shot(stream_events):
    store = DualStore()
    store.load_events(list(stream_events))
    yield store
    store.close()


class TestBatchedAppendEquivalence:
    @pytest.mark.parametrize("batches", [1, 2, 5, 9])
    def test_backends_identical_to_one_shot(self, stream_events, one_shot,
                                            batches):
        with DualStore() as streamed:
            for chunk in _chunks(stream_events, batches):
                streamed.append_events(chunk)
            streamed.flush_appends()
            _assert_stores_identical(one_shot, streamed)
            assert [e.event_id for e in one_shot.events()] == \
                [e.event_id for e in streamed.events()]
            assert one_shot.last_reduction.merged_events == \
                streamed.last_reduction.merged_events

    @pytest.mark.parametrize("batches", [3, 7])
    def test_tbql_results_byte_identical(self, stream_events, one_shot,
                                         batches):
        with DualStore() as streamed:
            for chunk in _chunks(stream_events, batches):
                streamed.append_events(chunk)
            streamed.flush_appends()
            reference = TBQLExecutor(one_shot)
            live = TBQLExecutor(streamed)
            for text in EQUIVALENCE_CORPUS:
                expected = json.dumps(
                    result_payload(reference.execute(text)), sort_keys=True)
                actual = json.dumps(
                    result_payload(live.execute(text)), sort_keys=True)
                assert actual == expected, text

    def test_merge_run_spans_batch_boundary(self):
        # Six mergeable reads split 3/3 across two appends must collapse
        # into ONE stored event, exactly as the one-shot load merges them.
        proc = ProcessEntity(exename="/bin/cat", pid=10)
        target = FileEntity(path="/tmp/data")
        events = [
            SystemEvent(subject=proc, operation=Operation.READ, obj=target,
                        start_time=100.0 + 0.1 * index,
                        end_time=100.05 + 0.1 * index, data_amount=10)
            for index in range(6)
        ]
        with DualStore() as one, DualStore() as streamed:
            one.load_events(list(events))
            streamed.append_events(events[:3])
            assert streamed.relational.count_events() == 0  # still open
            streamed.append_events(events[3:])
            streamed.flush_appends()
            _assert_stores_identical(one, streamed)
            rows = streamed.execute_sql("SELECT * FROM events")
            assert len(rows) == 1
            assert rows[0]["data_amount"] == 60

    def test_append_after_one_shot_load_continues_ids(self, stream_events):
        half = len(stream_events) // 2
        with DualStore() as store:
            store.load_events(stream_events[:half])
            loaded_entities = store.relational.count_entities()
            store.append_events(stream_events[half:])
            store.flush_appends()
            # Ids keep the relational == graph invariant across the seam.
            rows = store.execute_sql(
                "SELECT id, type FROM entities ORDER BY id")
            assert len(rows) >= loaded_entities
            for row in rows:
                node = store.graph.graph.node(row["id"])
                assert node.properties["type"] == row["type"]

    def test_append_without_reduction(self, stream_events):
        with DualStore(reduce=False) as one, \
                DualStore(reduce=False) as streamed:
            one.load_events(list(stream_events))
            for chunk in _chunks(list(stream_events), 4):
                streamed.append_events(chunk)
            streamed.flush_appends()
            _assert_stores_identical(one, streamed)


class TestAppendBookkeeping:
    def test_data_version_bumps_per_stored_batch(self, stream_events):
        with DualStore() as store:
            before = store.data_version
            store.append_events(stream_events[:20])
            store.append_events(stream_events[20:40])
            store.flush_appends()
            # Every call that stored rows (entities and/or events) bumps.
            assert store.data_version > before
            versions = store.data_version
            store.append_events([])
            assert store.data_version == versions   # empty batch: no bump

    def test_append_stats_report_delta(self, stream_events):
        with DualStore() as store:
            stats = store.append_events(stream_events[:30])
            assert stats.strategy == "append"
            assert stats.input_events == 30
            assert int(stats) == stats.events
            sealed = store.flush_appends()
            assert int(stats) + int(sealed) <= 30
            assert store.pending_appends == 0

    def test_retain_events_off_keeps_backends_but_not_copies(
            self, stream_events):
        # Long-running streaming stores must not grow an unbounded third
        # in-memory copy of the stream.
        with DualStore(retain_events=False) as store:
            store.append_events(stream_events[:40])
            store.flush_appends()
            assert store.events() == []
            assert store.relational.count_events() > 0
            assert store.graph.num_edges() == \
                store.relational.count_events()

    def test_read_only_snapshot_rejects_append(self, stream_events,
                                               tmp_path):
        with DualStore() as store:
            store.load_events(stream_events[:40])
            store.save(tmp_path / "snap")
        reopened = DualStore.open(tmp_path / "snap")
        try:
            with pytest.raises(StorageError):
                reopened.append_events(stream_events[40:50])
        finally:
            reopened.close()

    def test_save_seals_open_runs(self, stream_events, tmp_path):
        with DualStore() as store:
            store.append_events(stream_events)
            pending = store.pending_appends
            assert pending > 0
            store.save(tmp_path / "sealed")
            assert store.pending_appends == 0
        reopened = DualStore.open(tmp_path / "sealed")
        try:
            assert reopened.relational.count_events() == \
                reopened.graph.num_edges()
        finally:
            reopened.close()


class TestWritableReopen:
    def test_reopen_resumes_data_version_and_ids(self, stream_events,
                                                 tmp_path):
        with DualStore() as store:
            store.append_events(stream_events[:60])
            store.flush_appends()
            saved_version = store.data_version
            saved_max = store.max_event_id
            store.save(tmp_path / "ckpt")
        writable = DualStore.open(tmp_path / "ckpt", read_only=False)
        try:
            assert writable.read_only is False
            assert writable.data_version == saved_version
            assert writable.max_event_id == saved_max
            stats = writable.append_events(stream_events[60:])
            writable.flush_appends()
            assert writable.data_version > saved_version
            assert int(stats) >= 0
            # The appended rows keep the id invariant with the graph.
            top = writable.execute_sql(
                "SELECT id, type FROM entities ORDER BY id DESC LIMIT 5")
            for row in top:
                node = writable.graph.graph.node(row["id"])
                assert node.properties["type"] == row["type"]
        finally:
            writable.close()

    def test_reopened_store_matches_uninterrupted_stream(self, tmp_path):
        # Stop-and-resume around a snapshot equals the uninterrupted run
        # when no merge run spans the checkpoint (time gap > threshold).
        collector = AuditCollector(CollectorConfig(seed=21))
        shell = collector.spawn_process("/bin/bash")
        collector.read_file(shell, "/etc/hosts", burst=2)
        collector.advance(30.0)
        first = _ordered(collector.events())
        collector.write_file(shell, "/tmp/out", burst=2)
        full = _ordered(collector.events())
        second = full[len(first):]

        with DualStore() as uninterrupted:
            uninterrupted.load_events(list(full))
            with DualStore() as original:
                original.append_events(first)
                original.save(tmp_path / "resume")
            resumed = DualStore.open(tmp_path / "resume", read_only=False)
            try:
                resumed.append_events(second)
                resumed.flush_appends()
                _assert_stores_identical(uninterrupted, resumed)
            finally:
                resumed.close()

    def test_reopen_never_mutates_snapshot(self, stream_events, tmp_path):
        with DualStore() as store:
            saved_count = int(store.load_events(stream_events[:40]))
            store.save(tmp_path / "frozen")
        manifest_before = (tmp_path / "frozen" /
                           "manifest.json").read_bytes()
        writable = DualStore.open(tmp_path / "frozen", read_only=False)
        try:
            writable.append_events(stream_events[40:60])
            writable.flush_appends()
            assert writable.relational.count_events() > saved_count
        finally:
            writable.close()
        # The snapshot directory is untouched by the writable session.
        again = DualStore.open(tmp_path / "frozen")
        try:
            assert again.relational.count_events() == saved_count
        finally:
            again.close()
        assert (tmp_path / "frozen" /
                "manifest.json").read_bytes() == manifest_before


def test_mixed_noise_streaming_equivalence():
    """Benign-noise workload: 6-batch append equals one-shot load."""
    events = _ordered(generate_benign_noise(25, seed=31))
    with DualStore() as one, DualStore() as streamed:
        one.load_events(list(events))
        for chunk in _chunks(events, 6):
            streamed.append_events(chunk)
        streamed.flush_appends()
        _assert_stores_identical(one, streamed)
