"""Unit tests for the mini-Cypher lexer, parser, and evaluator."""

import pytest

from repro.errors import CypherError
from repro.storage.graph import PropertyGraph, parse_cypher
from repro.storage.graph.cypher_ast import (Comparison, NodePattern,
                                            PropertyRef)
from repro.storage.graph.cypher_eval import CypherEvaluator, evaluate_where
from repro.storage.graph.cypher_parser import tokenize


@pytest.fixture()
def chain_graph():
    """proc tar -> file passwd, tar -> file upload, bzip2 -> upload."""
    graph = PropertyGraph()
    tar = graph.add_node("proc", {"type": "proc", "exename": "/bin/tar",
                                  "pid": 5})
    passwd = graph.add_node("file", {"type": "file", "name": "/etc/passwd"})
    upload = graph.add_node("file", {"type": "file",
                                     "name": "/tmp/upload.tar"})
    bzip2 = graph.add_node("proc", {"type": "proc", "exename": "/bin/bzip2",
                                    "pid": 6})
    bz2 = graph.add_node("file", {"type": "file",
                                  "name": "/tmp/upload.tar.bz2"})
    graph.add_edge(tar, passwd, "EVENT", {"operation": "read",
                                          "start_time": 1.0,
                                          "end_time": 1.1})
    graph.add_edge(tar, upload, "EVENT", {"operation": "write",
                                          "start_time": 2.0,
                                          "end_time": 2.1})
    graph.add_edge(bzip2, upload, "EVENT", {"operation": "read",
                                            "start_time": 3.0,
                                            "end_time": 3.1})
    graph.add_edge(bzip2, bz2, "EVENT", {"operation": "write",
                                         "start_time": 4.0,
                                         "end_time": 4.1})
    return graph


class TestLexerParser:
    def test_tokenize_symbols(self):
        kinds = [t.kind for t in tokenize("MATCH (a)-[r]->(b) RETURN a")]
        assert "eof" in kinds
        assert kinds.count("keyword") == 2

    def test_unexpected_character_raises(self):
        with pytest.raises(CypherError):
            tokenize("MATCH (a) RETURN a ; DROP")
        # ';' is not part of the dialect

    def test_parse_simple_query(self):
        query = parse_cypher(
            "MATCH (p:proc {exename: '/bin/tar'})-[e:EVENT]->(f:file) "
            "RETURN p.exename, f.name")
        assert len(query.patterns) == 1
        pattern = query.patterns[0]
        assert pattern.nodes[0].label == "proc"
        assert pattern.nodes[0].properties == {"exename": "/bin/tar"}
        assert pattern.relationships[0].label == "EVENT"
        assert [item.output_name for item in query.return_items] == \
            ["p.exename", "f.name"]

    def test_parse_variable_length(self):
        query = parse_cypher(
            "MATCH (p:proc)-[e:EVENT*2..4 {operation: 'read'}]->(f:file) "
            "RETURN f.name")
        rel = query.patterns[0].relationships[0]
        assert rel.min_length == 2
        assert rel.max_length == 4
        assert rel.is_variable_length

    def test_parse_where_and_distinct_and_limit(self):
        query = parse_cypher(
            "MATCH (p:proc)-[e:EVENT]->(f:file) "
            "WHERE p.exename CONTAINS 'tar' AND NOT f.name = '/x' "
            "RETURN DISTINCT f.name LIMIT 3")
        assert query.distinct
        assert query.limit == 3
        assert query.where is not None

    def test_parse_multiple_patterns(self):
        query = parse_cypher(
            "MATCH (a:proc)-[e1:EVENT]->(b:file), (c:proc)-[e2:EVENT]->(b) "
            "RETURN a, c")
        assert len(query.patterns) == 2
        assert query.variables() == {"a", "b", "c", "e1", "e2"}

    def test_parse_alias(self):
        query = parse_cypher("MATCH (a:proc)-[e:EVENT]->(b:file) "
                             "RETURN a.exename AS subject")
        assert query.return_items[0].output_name == "subject"

    def test_missing_return_raises(self):
        with pytest.raises(CypherError):
            parse_cypher("MATCH (a)-[r]->(b)")

    def test_invalid_range_raises(self):
        with pytest.raises(CypherError):
            parse_cypher("MATCH (a)-[r:EVENT*4..2]->(b) RETURN a")

    def test_path_pattern_length_mismatch_guard(self):
        with pytest.raises(ValueError):
            from repro.storage.graph.cypher_ast import PathPattern
            PathPattern(nodes=(NodePattern("a", None),), relationships=(
                parse_cypher("MATCH (x)-[r]->(y) RETURN x")
                .patterns[0].relationships[0],))


class TestEvaluator:
    def _run(self, graph, text):
        return CypherEvaluator(graph).execute(parse_cypher(text))

    def test_single_pattern_with_property_filter(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc {exename: '/bin/tar'})"
                         "-[e:EVENT {operation: 'read'}]->(f:file) "
                         "RETURN f.name")
        assert rows == [{"f.name": "/etc/passwd"}]

    def test_wildcard_property_filter(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc {exename: '%bzip2%'})"
                         "-[e:EVENT]->(f:file) RETURN DISTINCT f.name")
        assert {row["f.name"] for row in rows} == {"/tmp/upload.tar",
                                                   "/tmp/upload.tar.bz2"}

    def test_where_contains(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc)-[e:EVENT]->(f:file) "
                         "WHERE f.name CONTAINS 'passwd' RETURN p.exename")
        assert rows == [{"p.exename": "/bin/tar"}]

    def test_where_regex_and_comparison(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc)-[e:EVENT]->(f:file) "
                         "WHERE p.exename =~ '.*tar$' AND e.start_time < 1.5 "
                         "RETURN f.name")
        assert rows == [{"f.name": "/etc/passwd"}]

    def test_multi_pattern_join_on_shared_variable(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (a:proc)-[e1:EVENT {operation: 'write'}]->"
                         "(shared:file), (b:proc)-[e2:EVENT "
                         "{operation: 'read'}]->(shared) "
                         "WHERE a.exename <> b.exename "
                         "RETURN a.exename, b.exename, shared.name")
        assert {"a.exename": "/bin/tar", "b.exename": "/bin/bzip2",
                "shared.name": "/tmp/upload.tar"} in rows

    def test_temporal_constraint_across_patterns(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (a:proc)-[e1:EVENT]->(f:file), "
                         "(b:proc)-[e2:EVENT]->(g:file) "
                         "WHERE e1.end_time <= e2.start_time AND "
                         "f.name = '/etc/passwd' AND "
                         "g.name = '/tmp/upload.tar.bz2' "
                         "RETURN a.exename, b.exename")
        assert rows == [{"a.exename": "/bin/tar", "b.exename": "/bin/bzip2"}]

    def test_variable_length_path(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc {exename: '/bin/tar'})"
                         "-[e:EVENT*1..3]->(f:file) RETURN DISTINCT f.name")
        names = {row["f.name"] for row in rows}
        assert names == {"/etc/passwd", "/tmp/upload.tar"}

    def test_variable_length_final_hop_operation(self, chain_graph):
        # tar -> upload.tar (write), bzip2 -> upload.tar: paths of length 1
        # from tar with final hop read reach only /etc/passwd.
        rows = self._run(chain_graph,
                         "MATCH (p:proc {exename: '/bin/tar'})"
                         "-[e:EVENT*1..2 {operation: 'read'}]->(f:file) "
                         "RETURN DISTINCT f.name")
        assert {row["f.name"] for row in rows} == {"/etc/passwd"}

    def test_distinct_and_limit(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc)-[e:EVENT]->(f:file) "
                         "RETURN DISTINCT p.exename LIMIT 1")
        assert len(rows) == 1

    def test_bare_variable_returns_node_id(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc {exename: '/bin/tar'})"
                         "-[e:EVENT {operation: 'read'}]->(f:file) RETURN f")
        assert isinstance(rows[0]["f"], int)

    def test_no_match_returns_empty(self, chain_graph):
        rows = self._run(chain_graph,
                         "MATCH (p:proc {exename: '/bin/nonexistent'})"
                         "-[e:EVENT]->(f:file) RETURN f.name")
        assert rows == []


class TestWhereEvaluation:
    def test_comparison_null_semantics(self):
        expr = Comparison(PropertyRef("p", "missing"), ">", PropertyRef(
            "p", "other"))
        graph = PropertyGraph()
        node_id = graph.add_node("proc", {"other": 3})
        binding = {"p": graph.node(node_id)}
        assert evaluate_where(expr, binding) is False

    def test_starts_and_ends_with(self):
        graph = PropertyGraph()
        node_id = graph.add_node("file", {"name": "/tmp/upload.tar"})
        binding = {"f": graph.node(node_id)}
        starts = parse_cypher("MATCH (f:file) RETURN f").patterns  # noqa: F841
        assert evaluate_where(
            Comparison(PropertyRef("f", "name"), "STARTS WITH",
                       _lit("/tmp")), binding)
        assert evaluate_where(
            Comparison(PropertyRef("f", "name"), "ENDS WITH", _lit(".tar")),
            binding)


def _lit(value):
    from repro.storage.graph.cypher_ast import Literal
    return Literal(value)


class TestInListSupport:
    def test_parse_in_list(self):
        query = parse_cypher(
            "MATCH (s:proc)-[e:EVENT]->(o:file) "
            "WHERE s.id IN [1, 2, 3] RETURN s.id AS sid")
        comparison = query.where
        assert isinstance(comparison, Comparison)
        assert comparison.operator == "IN"
        assert comparison.right.value == (1, 2, 3)

    def test_parse_empty_and_string_lists(self):
        query = parse_cypher(
            "MATCH (f:file) WHERE f.name IN ['a', 'b'] RETURN f")
        assert query.where.right.value == ("a", "b")
        empty = parse_cypher("MATCH (f:file) WHERE f.id IN [] RETURN f")
        assert empty.where.right.value == ()

    def test_in_evaluation(self, chain_graph):
        evaluator = CypherEvaluator(chain_graph)
        rows = evaluator.execute(parse_cypher(
            "MATCH (s:proc)-[e:EVENT]->(o) WHERE s.id IN [1] "
            "RETURN DISTINCT s.exename AS name"))
        assert rows == [{"name": "/bin/tar"}]

    def test_in_with_no_match(self, chain_graph):
        evaluator = CypherEvaluator(chain_graph)
        rows = evaluator.execute(parse_cypher(
            "MATCH (s:proc)-[e:EVENT]->(o) WHERE s.id IN [] "
            "RETURN s.exename AS name"))
        assert rows == []

    def test_id_allowlist_restricts_enumeration(self, chain_graph):
        evaluator = CypherEvaluator(chain_graph)
        seen: list[int] = []
        original = chain_graph.out_edges

        def spying_out_edges(node_id):
            seen.append(node_id)
            return original(node_id)

        chain_graph.out_edges = spying_out_edges
        rows = evaluator.execute(parse_cypher(
            "MATCH (s:proc)-[e:EVENT]->(o:file) WHERE s.id IN [4] "
            "RETURN o.name AS name"))
        # Only the allowlisted node (bzip2, id 4) is expanded — the
        # restriction prunes enumeration, not just the WHERE filter.
        assert set(seen) == {4}
        assert {row["name"] for row in rows} == {"/tmp/upload.tar",
                                                 "/tmp/upload.tar.bz2"}

    def test_id_equality_restriction(self, chain_graph):
        evaluator = CypherEvaluator(chain_graph)
        rows = evaluator.execute(parse_cypher(
            "MATCH (s:proc)-[e:EVENT]->(o:file) WHERE s.id = 1 "
            "RETURN DISTINCT s.exename AS name"))
        assert rows == [{"name": "/bin/tar"}]
        assert evaluator._id_restrictions == {"s": {1}}
