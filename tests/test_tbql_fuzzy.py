"""Tests for the fuzzy search mode, the Poirot baseline, and conciseness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tbql.conciseness import (compare_conciseness, measure_conciseness,
                                    strip_comments)
from repro.tbql.fuzzy import (FuzzySearcher, GraphAligner, ProvenanceIndex,
                              QueryGraph, levenshtein_distance,
                              string_similarity)
from repro.tbql.parser import parse_tbql
from repro.tbql.poirot import PoirotSearcher
from repro.tbql.semantics import resolve_query


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_similarity_range_and_symmetry(self):
        assert string_similarity("pass_mgr.exe", "pass_mgr_v2.exe") > 0.6
        assert string_similarity("abc", "xyz") < 0.5
        assert string_similarity("a", "a") == 1.0

    def test_substring_containment_boost(self):
        assert string_similarity("upload.tar", "/tmp/upload.tar") >= 0.9

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_distance_symmetric_and_triangle_with_empty(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(st.text(max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0


class TestQueryGraph:
    def test_built_from_resolved_query(self):
        resolved = resolve_query(parse_tbql(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
            'proc p connect ip i["1.2.3.4"] as e2 return p'))
        graph = QueryGraph.from_resolved(resolved)
        assert len(graph.nodes) == 3
        assert len(graph.edges) == 2
        search_strings = {node.entity_id: node.search_string
                          for node in graph.nodes}
        assert search_strings["p"] == "/bin/tar"
        assert search_strings["i"] == "1.2.3.4"


class TestProvenanceIndex:
    def _index(self, store):
        index = ProvenanceIndex()
        for row in store.relational.all_events():
            index.add_event(row)
        return index

    def test_candidates_by_similarity(self, data_leak_store):
        index = self._index(data_leak_store)
        resolved = resolve_query(parse_tbql(
            'proc p["%/bin/tar%"] read file f return p'))
        graph = QueryGraph.from_resolved(resolved)
        candidates = index.candidates_for(graph.nodes[0])
        assert candidates
        names = {index.node_names[node_id] for node_id, _ in candidates}
        assert "/bin/tar" in names

    def test_flow_score_direct_edge(self, data_leak_store):
        index = self._index(data_leak_store)
        tar_id = next(node_id for node_id, name in index.node_names.items()
                      if name == "/bin/tar" and
                      index.node_types[node_id] == "proc")
        passwd_id = next(node_id for node_id, name in
                         index.node_names.items() if name == "/etc/passwd")
        assert index.flow_score(tar_id, passwd_id, frozenset({"read"})) == 1.0
        assert index.flow_score(passwd_id, tar_id, None) == 0.0


class TestFuzzyAndPoirot:
    QUERY = ('proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as evt1 '
             'proc p write file g["%/tmp/upload.tar%"] as evt2 '
             'return p, f, g')

    def test_exact_alignment_found(self, data_leak_store):
        result = FuzzySearcher(data_leak_store).search(self.QUERY)
        assert result.alignments
        best = result.best
        assert best.score > 0.9
        assert best.node_names["p"] == "/bin/tar"
        assert best.node_names["f"] == "/etc/passwd"

    def test_fuzzy_tolerates_ioc_deviation(self, data_leak_store):
        deviated = self.QUERY.replace("/bin/tar", "/bin/tarr").replace(
            "/etc/passwd", "/etc/passwd0")
        result = FuzzySearcher(data_leak_store).search(deviated)
        assert result.alignments
        assert result.best.node_names["p"] == "/bin/tar"

    def test_exact_mode_misses_deviated_iocs(self, data_leak_store):
        from repro.tbql.executor import TBQLExecutor
        deviated = self.QUERY.replace("/bin/tar", "/bin/tarr")
        assert TBQLExecutor(data_leak_store).execute(deviated).rows == []

    def test_poirot_stops_at_first_alignment(self, data_leak_store):
        fuzzy = FuzzySearcher(data_leak_store).search(self.QUERY)
        poirot = PoirotSearcher(data_leak_store).search(self.QUERY)
        assert len(poirot.alignments) == 1
        assert len(fuzzy.alignments) >= len(poirot.alignments)

    def test_timing_breakdown_present(self, data_leak_store):
        result = FuzzySearcher(data_leak_store).search(self.QUERY)
        assert result.loading_seconds >= 0
        assert result.preprocessing_seconds >= 0
        assert result.searching_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.loading_seconds + result.preprocessing_seconds +
            result.searching_seconds)

    def test_candidate_counts_reported(self, data_leak_store):
        result = FuzzySearcher(data_leak_store).search(self.QUERY)
        assert set(result.candidate_counts) == {"p", "f", "g"}

    def test_no_alignment_when_nothing_similar(self, data_leak_store):
        query = ('proc p["%/opt/totally/unknown/binary%"] read file '
                 'f["%/zzz/not/here%"] return p')
        result = FuzzySearcher(data_leak_store).search(query)
        assert result.best is None

    def test_aligner_respects_score_threshold(self, data_leak_store):
        resolved = resolve_query(parse_tbql(self.QUERY))
        index = ProvenanceIndex()
        for row in data_leak_store.relational.all_events():
            index.add_event(row)
        aligner = GraphAligner(QueryGraph.from_resolved(resolved), index,
                               score_threshold=1.01)
        assert list(aligner.alignments()) == []


class TestConciseness:
    def test_counts_exclude_whitespace(self):
        metrics = measure_conciseness("proc p read file f\nreturn p")
        assert metrics.characters == len("procpreadfilefreturnp")
        assert metrics.words == 7

    def test_comments_stripped(self):
        assert strip_comments("SELECT 1 -- trailing").strip() == "SELECT 1"
        assert "comment" not in strip_comments("/* comment */ MATCH (n)")

    def test_ratio(self):
        tbql = measure_conciseness("proc p read file f return p")
        sql = measure_conciseness("SELECT something FROM events e JOIN "
                                  "entities s ON e.subject_id = s.id")
        assert tbql.ratio_to(sql) > 1.0

    def test_compare_conciseness_keys(self):
        result = compare_conciseness({"TBQL": "a b", "SQL": "longer query"})
        assert set(result) == {"TBQL", "SQL"}

    def test_tbql_more_concise_than_sql_and_cypher(self, data_leak_store,
                                                   data_leak_extraction):
        from repro.benchmark.queries import build_case_queries
        from repro.benchmark import get_case
        queries = build_case_queries(get_case("data_leak"))
        tbql = measure_conciseness(queries.tbql)
        sql = measure_conciseness(queries.sql)
        cypher = measure_conciseness(queries.cypher)
        assert sql.characters > 2.8 * tbql.characters
        assert cypher.characters > 1.5 * tbql.characters
