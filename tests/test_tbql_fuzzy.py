"""Tests for the fuzzy search mode, the Poirot baseline, and conciseness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tbql.conciseness import (compare_conciseness, measure_conciseness,
                                    strip_comments)
from repro.tbql.fuzzy import (FuzzySearcher, GraphAligner, ProvenanceIndex,
                              QueryGraph, QueryNode, levenshtein_distance,
                              levenshtein_within, string_similarity)
from repro.tbql.parser import parse_tbql
from repro.tbql.poirot import PoirotSearcher
from repro.tbql.semantics import resolve_query


class TestLevenshtein:
    def test_known_distances(self):
        assert levenshtein_distance("kitten", "sitting") == 3
        assert levenshtein_distance("abc", "abc") == 0
        assert levenshtein_distance("", "abc") == 3
        assert levenshtein_distance("abc", "") == 3

    def test_similarity_range_and_symmetry(self):
        assert string_similarity("pass_mgr.exe", "pass_mgr_v2.exe") > 0.6
        assert string_similarity("abc", "xyz") < 0.5
        assert string_similarity("a", "a") == 1.0

    def test_substring_containment_boost(self):
        assert string_similarity("upload.tar", "/tmp/upload.tar") >= 0.9

    @given(st.text(max_size=20), st.text(max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_distance_symmetric_and_triangle_with_empty(self, a, b):
        assert levenshtein_distance(a, b) == levenshtein_distance(b, a)
        assert levenshtein_distance(a, b) <= max(len(a), len(b))

    @given(st.text(max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_identity(self, a):
        assert levenshtein_distance(a, a) == 0

    @given(st.text(max_size=16), st.text(max_size=16),
           st.integers(min_value=0, max_value=18))
    @settings(max_examples=150, deadline=None)
    def test_banded_matches_full_dp(self, a, b, bound):
        """levenshtein_within returns the exact distance iff within bound."""
        full = levenshtein_distance(a, b)
        banded = levenshtein_within(a, b, bound)
        if full <= bound:
            assert banded == full
        else:
            assert banded is None

    def test_banded_early_exit_cases(self):
        assert levenshtein_within("kitten", "sitting", 3) == 3
        assert levenshtein_within("kitten", "sitting", 2) is None
        assert levenshtein_within("abc", "abc", 0) == 0
        assert levenshtein_within("abc", "abd", 0) is None
        assert levenshtein_within("", "abcd", 3) is None
        assert levenshtein_within("", "abcd", 4) == 4
        assert levenshtein_within("x", "y", -1) is None


class TestQueryGraph:
    def test_built_from_resolved_query(self):
        resolved = resolve_query(parse_tbql(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
            'proc p connect ip i["1.2.3.4"] as e2 return p'))
        graph = QueryGraph.from_resolved(resolved)
        assert len(graph.nodes) == 3
        assert len(graph.edges) == 2
        search_strings = {node.entity_id: node.search_string
                          for node in graph.nodes}
        assert search_strings["p"] == "/bin/tar"
        assert search_strings["i"] == "1.2.3.4"


class TestProvenanceIndex:
    def _index(self, store):
        index = ProvenanceIndex()
        for row in store.relational.all_events():
            index.add_event(row)
        return index

    def test_candidates_by_similarity(self, data_leak_store):
        index = self._index(data_leak_store)
        resolved = resolve_query(parse_tbql(
            'proc p["%/bin/tar%"] read file f return p'))
        graph = QueryGraph.from_resolved(resolved)
        candidates = index.candidates_for(graph.nodes[0])
        assert candidates
        names = {index.node_names[node_id] for node_id, _ in candidates}
        assert "/bin/tar" in names

    def test_flow_score_direct_edge(self, data_leak_store):
        index = self._index(data_leak_store)
        tar_id = next(node_id for node_id, name in index.node_names.items()
                      if name == "/bin/tar" and
                      index.node_types[node_id] == "proc")
        passwd_id = next(node_id for node_id, name in
                         index.node_names.items() if name == "/etc/passwd")
        assert index.flow_score(tar_id, passwd_id, frozenset({"read"})) == 1.0
        assert index.flow_score(passwd_id, tar_id, None) == 0.0


#: Alphabet with heavy collisions so random names share bigrams often.
_NAME_ALPHABET = "ab/.t"


def _index_from_names(names):
    index = ProvenanceIndex()
    for node_id, (name, node_type) in enumerate(names, start=1):
        index.node_names[node_id] = name
        index.node_types[node_id] = node_type
    return index


class TestCandidatePrefilterEquivalence:
    """The bigram prefilter is lossless: indexed == brute-force candidates."""

    @given(st.lists(st.tuples(st.text(_NAME_ALPHABET, max_size=12),
                              st.sampled_from(["proc", "file", "ip"])),
                    max_size=25),
           st.text(_NAME_ALPHABET, max_size=12),
           st.sampled_from(["proc", "file", ""]),
           st.sampled_from([0.3, 0.5, 0.6, 0.7, 0.9, 0.95]))
    @settings(max_examples=200, deadline=None)
    def test_candidate_sets_identical(self, names, needle, query_type,
                                      threshold):
        index = _index_from_names(names)
        query_node = QueryNode(entity_id="q", entity_type=query_type,
                               search_string=needle)
        fast = index.candidates_for(query_node, threshold=threshold)
        slow = index.candidates_for_bruteforce(query_node,
                                               threshold=threshold)
        assert fast == slow

    def test_boundary_similarity_not_dropped(self):
        # "abcde" vs "abxye": distance 2 over length 5 -> similarity exactly
        # 0.6, the NODE_SIMILARITY_THRESHOLD boundary; the prefilter must
        # keep it (>= comparison, like the brute force).
        index = _index_from_names([("abxye", "proc"), ("zzzzz", "proc")])
        query_node = QueryNode(entity_id="q", entity_type="proc",
                               search_string="abcde")
        fast = index.candidates_for(query_node, threshold=0.6)
        slow = index.candidates_for_bruteforce(query_node, threshold=0.6)
        assert fast == slow == [(1, 0.6)]

    def test_containment_candidates_survive_prefilter(self):
        # A short IOC inside a much longer path passes only through the
        # containment boost; the gram count filter must not prune it.
        long_path = "/var/spool/deep/nested/dirs/upload.tar"
        index = _index_from_names([(long_path, "file"),
                                   ("/other/file", "file")])
        query_node = QueryNode(entity_id="q", entity_type="file",
                               search_string="upload.tar")
        fast = index.candidates_for(query_node, threshold=0.6)
        slow = index.candidates_for_bruteforce(query_node, threshold=0.6)
        assert fast == slow
        assert fast and fast[0][0] == 1 and fast[0][1] >= 0.9

    def test_empty_needle_matches_bruteforce(self):
        index = _index_from_names([("/bin/tar", "proc"), ("/etc", "file")])
        query_node = QueryNode(entity_id="q", entity_type="proc",
                               search_string="")
        for threshold in (0.4, 0.5, 0.6):
            assert index.candidates_for(query_node, threshold=threshold) == \
                index.candidates_for_bruteforce(query_node,
                                                threshold=threshold)

    def test_mutation_invalidates_name_index(self, data_leak_store):
        index = ProvenanceIndex()
        rows = data_leak_store.relational.all_events()
        for row in rows[:-1]:
            index.add_event(row)
        query_node = QueryNode(entity_id="q", entity_type="",
                               search_string="/bin/tar")
        first = index.candidates_for(query_node)
        index.add_event(rows[-1])
        assert index.candidates_for(query_node) == \
            index.candidates_for_bruteforce(query_node)
        assert first  # the pre-mutation query found something


class TestFlowClosureEquivalence:
    """The cached flow closure scores exactly like the per-edge BFS."""

    @given(st.lists(st.tuples(st.integers(1, 8), st.integers(1, 8),
                              st.sampled_from(["read", "write", "connect"])),
                    max_size=30))
    @settings(max_examples=150, deadline=None)
    def test_flow_scores_identical(self, edge_specs):
        index = ProvenanceIndex()
        for node in range(1, 9):
            index.node_names[node] = f"n{node}"
            index.node_types[node] = "proc"
        for source, target, operation in edge_specs:
            index.out_edges.setdefault(source, []).append(
                (target, operation, 0.0))
            index.num_edges += 1
        operation_filters = [None, frozenset(), frozenset({"read"}),
                             frozenset({"write", "connect"})]
        for source in range(1, 9):
            for target in range(1, 9):
                for operations in operation_filters:
                    assert index.flow_score(source, target, operations) == \
                        index.flow_score_bruteforce(source, target,
                                                    operations), \
                        (source, target, operations)

    def test_closure_cache_invalidated_by_add_event(self, data_leak_store):
        index = ProvenanceIndex()
        rows = data_leak_store.relational.all_events()
        for row in rows:
            index.add_event(row)
        tar_id = next(node_id for node_id, name in index.node_names.items()
                      if name == "/bin/tar" and
                      index.node_types[node_id] == "proc")
        before = index.flows_from(tar_id)
        assert before  # closure materialized and cached
        synthetic = dict(rows[0])
        synthetic["subject_id"] = tar_id
        synthetic["object_id"] = max(index.node_names) + 1
        synthetic["operation"] = "write"
        index.add_event(synthetic)
        after = index.flows_from(tar_id)
        assert synthetic["object_id"] in after


class TestStrategyEquivalence:
    """indexed and bruteforce searches return identical alignments."""

    QUERY = ('proc p["%/bin/tarr%"] read file f["%/etc/passwd0%"] as evt1 '
             'proc p write file g["%/tmp/upload.tar%"] as evt2 '
             'return p, f, g')

    @staticmethod
    def _alignment_key(alignment):
        return (sorted(alignment.mapping.items()), alignment.score)

    def test_fuzzy_strategies_agree(self, data_leak_store):
        fast = FuzzySearcher(data_leak_store, strategy="indexed").search(
            self.QUERY)
        slow = FuzzySearcher(data_leak_store, strategy="bruteforce").search(
            self.QUERY)
        assert [self._alignment_key(a) for a in fast.alignments] == \
               [self._alignment_key(a) for a in slow.alignments]
        assert fast.candidate_counts == slow.candidate_counts
        assert fast.alignments  # the deviated IOCs still align

    def test_poirot_strategies_agree(self, data_leak_store):
        fast = PoirotSearcher(data_leak_store, strategy="indexed").search(
            self.QUERY)
        slow = PoirotSearcher(data_leak_store, strategy="bruteforce").search(
            self.QUERY)
        assert [self._alignment_key(a) for a in fast.alignments] == \
               [self._alignment_key(a) for a in slow.alignments]
        assert len(fast.alignments) == 1

    def test_unknown_strategy_rejected(self, data_leak_store):
        with pytest.raises(ValueError):
            FuzzySearcher(data_leak_store, strategy="psychic")
        resolved = resolve_query(parse_tbql(self.QUERY))
        index = ProvenanceIndex()
        with pytest.raises(ValueError):
            GraphAligner(QueryGraph.from_resolved(resolved), index,
                         strategy="psychic")

    def test_indexed_sees_relational_only_loads(self):
        # After an incremental relational-only load the backends drift; the
        # indexed strategy must fall back to the relational rows so both
        # strategies still search the same data.
        from repro.audit import AuditCollector
        from repro.storage import DualStore

        collector = AuditCollector()
        tar = collector.spawn_process("/bin/tar")
        collector.read_file(tar, "/etc/passwd")
        with DualStore() as store:
            store.load_events(collector.events())
            late = AuditCollector()
            curl = late.spawn_process("/usr/bin/curl")
            late.connect_ip(curl, "192.168.29.128")
            store.relational.load_events(late.events())
            query = ('proc p["%/usr/bin/curl%"] connect ip '
                     'i["%192.168.29.128%"] return p')
            fast = FuzzySearcher(store, strategy="indexed").search(query)
            slow = FuzzySearcher(store, strategy="bruteforce").search(query)
            assert [self._alignment_key(a) for a in fast.alignments] == \
                   [self._alignment_key(a) for a in slow.alignments]
            assert fast.alignments  # the relational-only events were seen

    def test_branch_and_bound_prunes_like_threshold(self, data_leak_store):
        # With an impossible threshold the bounded search must agree with
        # the brute force: no alignments, regardless of pruning.
        fast = FuzzySearcher(data_leak_store, score_threshold=1.01,
                             strategy="indexed").search(self.QUERY)
        slow = FuzzySearcher(data_leak_store, score_threshold=1.01,
                             strategy="bruteforce").search(self.QUERY)
        assert fast.alignments == slow.alignments == []


class TestFuzzyAndPoirot:
    QUERY = ('proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as evt1 '
             'proc p write file g["%/tmp/upload.tar%"] as evt2 '
             'return p, f, g')

    def test_exact_alignment_found(self, data_leak_store):
        result = FuzzySearcher(data_leak_store).search(self.QUERY)
        assert result.alignments
        best = result.best
        assert best.score > 0.9
        assert best.node_names["p"] == "/bin/tar"
        assert best.node_names["f"] == "/etc/passwd"

    def test_fuzzy_tolerates_ioc_deviation(self, data_leak_store):
        deviated = self.QUERY.replace("/bin/tar", "/bin/tarr").replace(
            "/etc/passwd", "/etc/passwd0")
        result = FuzzySearcher(data_leak_store).search(deviated)
        assert result.alignments
        assert result.best.node_names["p"] == "/bin/tar"

    def test_exact_mode_misses_deviated_iocs(self, data_leak_store):
        from repro.tbql.executor import TBQLExecutor
        deviated = self.QUERY.replace("/bin/tar", "/bin/tarr")
        assert TBQLExecutor(data_leak_store).execute(deviated).rows == []

    def test_poirot_stops_at_first_alignment(self, data_leak_store):
        fuzzy = FuzzySearcher(data_leak_store).search(self.QUERY)
        poirot = PoirotSearcher(data_leak_store).search(self.QUERY)
        assert len(poirot.alignments) == 1
        assert len(fuzzy.alignments) >= len(poirot.alignments)

    def test_timing_breakdown_present(self, data_leak_store):
        result = FuzzySearcher(data_leak_store).search(self.QUERY)
        assert result.loading_seconds >= 0
        assert result.preprocessing_seconds >= 0
        assert result.searching_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.loading_seconds + result.preprocessing_seconds +
            result.searching_seconds)

    def test_candidate_counts_reported(self, data_leak_store):
        result = FuzzySearcher(data_leak_store).search(self.QUERY)
        assert set(result.candidate_counts) == {"p", "f", "g"}

    def test_no_alignment_when_nothing_similar(self, data_leak_store):
        query = ('proc p["%/opt/totally/unknown/binary%"] read file '
                 'f["%/zzz/not/here%"] return p')
        result = FuzzySearcher(data_leak_store).search(query)
        assert result.best is None

    def test_aligner_respects_score_threshold(self, data_leak_store):
        resolved = resolve_query(parse_tbql(self.QUERY))
        index = ProvenanceIndex()
        for row in data_leak_store.relational.all_events():
            index.add_event(row)
        aligner = GraphAligner(QueryGraph.from_resolved(resolved), index,
                               score_threshold=1.01)
        assert list(aligner.alignments()) == []


class TestConciseness:
    def test_counts_exclude_whitespace(self):
        metrics = measure_conciseness("proc p read file f\nreturn p")
        assert metrics.characters == len("procpreadfilefreturnp")
        assert metrics.words == 7

    def test_comments_stripped(self):
        assert strip_comments("SELECT 1 -- trailing").strip() == "SELECT 1"
        assert "comment" not in strip_comments("/* comment */ MATCH (n)")

    def test_ratio(self):
        tbql = measure_conciseness("proc p read file f return p")
        sql = measure_conciseness("SELECT something FROM events e JOIN "
                                  "entities s ON e.subject_id = s.id")
        assert tbql.ratio_to(sql) > 1.0

    def test_compare_conciseness_keys(self):
        result = compare_conciseness({"TBQL": "a b", "SQL": "longer query"})
        assert set(result) == {"TBQL", "SQL"}

    def test_tbql_more_concise_than_sql_and_cypher(self, data_leak_store,
                                                   data_leak_extraction):
        from repro.benchmark.queries import build_case_queries
        from repro.benchmark import get_case
        queries = build_case_queries(get_case("data_leak"))
        tbql = measure_conciseness(queries.tbql)
        sql = measure_conciseness(queries.sql)
        cypher = measure_conciseness(queries.cypher)
        assert sql.characters > 2.8 * tbql.characters
        assert cypher.characters > 1.5 * tbql.characters
