"""End-to-end integration tests for the ThreatRaptor facade."""

from repro.audit.logfmt import format_log
from repro.hunting import ThreatRaptor
from repro.tbql.synthesis import SynthesisPlan

from .conftest import DATA_LEAK_EDGES, DATA_LEAK_TEXT


class TestIngestion:
    def test_ingest_events_reports_reduced_count(self, data_leak_events):
        raptor = ThreatRaptor()
        stored = raptor.ingest_events(data_leak_events)
        assert 0 < stored <= len(data_leak_events)
        stats = raptor.store.statistics()
        assert stats["relational_events"] == stats["graph_edges"] == stored
        raptor.store.close()

    def test_ingest_log_text(self, data_leak_events):
        raptor = ThreatRaptor()
        stored = raptor.ingest_log_text(format_log(data_leak_events))
        assert stored > 0
        raptor.store.close()


class TestOSCTIDrivenHunt:
    def test_full_pipeline_on_figure2(self, data_leak_raptor):
        report = data_leak_raptor.hunt(DATA_LEAK_TEXT)
        assert report.synthesized.pattern_count == 8
        assert len(report.result.rows) == 1
        assert report.result.matched_event_signatures == \
            set(DATA_LEAK_EDGES)
        assert report.total_pipeline_seconds > 0
        assert report.executed_query == report.synthesized.text

    def test_pipeline_time_under_paper_budget(self, data_leak_raptor):
        report = data_leak_raptor.hunt(DATA_LEAK_TEXT)
        # The paper reports ~0.52s on average for extraction + graph +
        # synthesis; our substrate should stay well inside a few seconds.
        assert report.total_pipeline_seconds < 5.0

    def test_revised_query_overrides_synthesized(self, data_leak_raptor):
        revised = ('proc p["%/usr/bin/curl%"] connect ip '
                   'i["192.168.29.128"] return distinct p, i')
        report = data_leak_raptor.hunt(DATA_LEAK_TEXT, revised_query=revised)
        assert report.executed_query == revised
        assert report.result.rows == [{"p.exename": "/usr/bin/curl",
                                       "i.dstip": "192.168.29.128"}]

    def test_fuzzy_fallback_triggers_on_empty_result(self, data_leak_raptor):
        # Deviate an IOC so the exact search finds nothing.
        deviated_text = DATA_LEAK_TEXT.replace("/bin/tar", "/bin/tarx")
        report = data_leak_raptor.hunt(deviated_text, fallback_to_fuzzy=True)
        assert report.result.rows == []
        assert report.fuzzy_result is not None
        assert report.fuzzy_result.alignments

    def test_no_fuzzy_fallback_when_results_found(self, data_leak_raptor):
        report = data_leak_raptor.hunt(DATA_LEAK_TEXT, fallback_to_fuzzy=True)
        assert report.fuzzy_result is None

    def test_path_pattern_synthesis_plan(self, data_leak_events):
        raptor = ThreatRaptor(synthesis_plan=SynthesisPlan(
            use_path_patterns=True, fuzzy_paths=False, temporal_order=False))
        raptor.ingest_events(data_leak_events)
        report = raptor.hunt(DATA_LEAK_TEXT)
        assert "->[read]" in report.synthesized.text
        assert report.result.rows
        raptor.store.close()


class TestProactiveHunting:
    def test_manual_tbql_query(self, data_leak_raptor):
        result = data_leak_raptor.execute_tbql(
            'proc p read || write file f["%/etc/passwd%"] '
            'return distinct p, f')
        assert {row["p.exename"] for row in result.rows} >= {"/bin/tar"}

    def test_fuzzy_search_direct(self, data_leak_raptor):
        result = data_leak_raptor.fuzzy_search(
            'proc p["%/bin/taro%"] read file f["%/etc/passwd%"] return p')
        assert result.alignments
        assert result.best.node_names["p"] == "/bin/tar"

    def test_exact_faster_than_fuzzy(self, data_leak_raptor):
        query = ('proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
                 'return p, f')
        exact = data_leak_raptor.execute_tbql(query)
        fuzzy = data_leak_raptor.fuzzy_search(query)
        assert exact.elapsed_seconds < fuzzy.total_seconds * 5
        # (fuzzy includes loading + preprocessing + exhaustive search and is
        # expected to be the slower mode overall, as in Table IX)
        assert fuzzy.total_seconds > 0
