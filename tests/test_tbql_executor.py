"""Tests for the scheduler and the exact execution engine."""

from repro.tbql.executor import TBQLExecutor
from repro.tbql.parser import parse_tbql
from repro.tbql.scheduler import naive_schedule, pruning_score, schedule
from repro.tbql.semantics import resolve_query

from .conftest import DATA_LEAK_EDGES


def resolve(text):
    return resolve_query(parse_tbql(text))


class TestPruningScore:
    def test_more_constraints_higher_score(self):
        resolved = resolve('proc p["%a%"] read file f["%b%"] as e1 '
                           'proc q read file g as e2 return p')
        constrained, unconstrained = resolved.patterns
        assert pruning_score(constrained) > pruning_score(unconstrained)

    def test_shorter_path_higher_score(self):
        resolved = resolve('proc p["%a%"] ~>(1~2)[read] file f["%b%"] as e1 '
                           'proc q["%a%"] ~>(1~8)[read] file g["%b%"] as e2 '
                           'return p')
        short, long = resolved.patterns
        assert pruning_score(short) > pruning_score(long)

    def test_path_pattern_scores_below_equivalent_event_pattern(self):
        resolved = resolve('proc p["%a%"] read file f["%b%"] as e1 '
                           'proc q["%a%"] ~>(1~4)[read] file g["%b%"] as e2 '
                           'return p')
        event_pattern, path_pattern = resolved.patterns
        assert pruning_score(event_pattern) > pruning_score(path_pattern)


class TestSchedule:
    def test_starts_with_most_selective_pattern(self):
        resolved = resolve('proc p read file f as e1 '
                           'proc p["%tar%"] read file g["%passwd%"] as e2 '
                           'return p')
        steps = schedule(resolved)
        assert steps[0].pattern.pattern_id == "e2"

    def test_prefers_connected_patterns(self):
        resolved = resolve(
            'proc a["%x%"] read file f["%y%"] as e1 '          # selective
            'proc a read file g as e2 '                        # shares a
            'proc b["%z%"] write file h as e3 return a')       # disconnected
        steps = schedule(resolved)
        order = [step.pattern.pattern_id for step in steps]
        assert order[0] == "e1"
        assert order.index("e2") < order.index("e3") or \
            pruning_score(resolved.patterns[2]) >= \
            pruning_score(resolved.patterns[1])

    def test_all_patterns_scheduled_exactly_once(self, data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        resolved = resolve(synthesize_tbql(data_leak_extraction.graph).text)
        steps = schedule(resolved)
        assert sorted(s.pattern.pattern_id for s in steps) == \
            sorted(p.pattern_id for p in resolved.patterns)

    def test_bound_entities_accumulate(self):
        resolved = resolve('proc p["%a%"] read file f["%b%"] as e1 '
                           'proc p write file g as e2 return p')
        steps = schedule(resolved)
        assert steps[0].bound_entities == frozenset()
        assert "p" in steps[1].bound_entities

    def test_naive_schedule_keeps_declaration_order(self):
        resolved = resolve('proc p read file f as e1 '
                           'proc p["%tar%"] read file g["%x%"] as e2 '
                           'return p')
        steps = naive_schedule(resolved)
        assert [s.pattern.pattern_id for s in steps] == ["e1", "e2"]


class TestExecutor:
    def test_single_pattern_query(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] return p, f')
        assert result.rows == [{"p.exename": "/bin/tar",
                                "f.name": "/etc/passwd"}]
        assert result.matched_event_signatures == {
            ("/bin/tar", "read", "/etc/passwd")}

    def test_figure2_query_finds_all_steps(self, data_leak_store,
                                           data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            synthesize_tbql(data_leak_extraction.graph).text)
        assert len(result.rows) == 1
        assert result.matched_event_signatures == set(DATA_LEAK_EDGES)
        assert result.elapsed_seconds > 0
        assert len(result.plan) == 8

    def test_operation_disjunction(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p["%/bin/tar%"] read || write file f return distinct '
            'f.name')
        names = {row["f.name"] for row in result.rows}
        assert names == {"/etc/passwd", "/tmp/upload.tar"}

    def test_temporal_constraint_filters_rows(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        # Reversed order: curl connects *after* tar reads, so requiring the
        # opposite order must produce no joined rows.
        result = executor.execute(
            'proc p["%/usr/bin/curl%"] connect ip i["192.168.29.128"] as e1 '
            'proc q["%/bin/tar%"] read file f["%/etc/passwd%"] as e2 '
            'with e1 before e2 return p, q')
        assert result.rows == []

    def test_attribute_relation(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
            'proc q["%/bin/tar%"] write file g["%/tmp/upload.tar%"] as e2 '
            'with p.pid = q.pid return distinct p.pid, q.pid')
        assert len(result.rows) == 1
        assert result.rows[0]["p.pid"] == result.rows[0]["q.pid"]

    def test_entity_id_reuse_requires_same_entity(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p write file shared["%/tmp/upload.tar%"] as e1 '
            'proc q["%/bin/bzip2%"] read file shared as e2 '
            'return distinct p, q')
        assert result.rows == [{"p.exename": "/bin/tar",
                                "q.exename": "/bin/bzip2"}]

    def test_variable_length_path_pattern(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p["%/bin/tar%"] ~>(1~3)[write] file f return distinct '
            'f.name')
        names = {row["f.name"] for row in result.rows}
        # The only outgoing write flow from /bin/tar ends at /tmp/upload.tar;
        # the path syntax must not invent flows through passive file nodes.
        assert names == {"/tmp/upload.tar"}

    def test_length1_path_pattern_equivalent_to_event_pattern(
            self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        event_rows = executor.execute(
            'proc p["%/bin/bzip2%"] read file f return distinct f.name').rows
        path_rows = executor.execute(
            'proc p["%/bin/bzip2%"] ->[read] file f return distinct '
            'f.name').rows
        assert {r["f.name"] for r in event_rows} == \
            {r["f.name"] for r in path_rows}

    def test_no_match_returns_empty(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p["%/bin/nonexistent%"] read file f return p')
        assert result.rows == []
        assert result.matched_events == []

    def test_mixed_pattern_query(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] as e1 '
            'proc q["%/usr/bin/curl%"] ~>(1~2)[connect] ip i as e2 '
            'return distinct p, i.dstip')
        assert result.rows == [{"p.exename": "/bin/tar",
                                "i.dstip": "192.168.29.128"}]

    def test_global_time_window_excludes_everything(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        result = executor.execute(
            'from "1970-01-01" to "1970-01-02" '
            'proc p["%/bin/tar%"] read file f return p')
        assert result.rows == []

    def test_unscheduled_executor_same_results(self, data_leak_store,
                                               data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        text = synthesize_tbql(data_leak_extraction.graph).text
        scheduled = TBQLExecutor(data_leak_store, use_scheduler=True)
        unscheduled = TBQLExecutor(data_leak_store, use_scheduler=False)
        assert scheduled.execute(text).rows == unscheduled.execute(text).rows

    def test_distinct_deduplicates_rows(self, data_leak_store):
        executor = TBQLExecutor(data_leak_store)
        distinct = executor.execute(
            'proc p["%/bin/tar%"] read file f["%/etc/passwd%"] '
            'return distinct p')
        assert len(distinct.rows) == 1

    def test_giant_sql_baseline_agrees(self, data_leak_store,
                                       data_leak_extraction):
        from repro.tbql.synthesis import synthesize_tbql
        text = synthesize_tbql(data_leak_extraction.graph).text
        executor = TBQLExecutor(data_leak_store)
        rows = executor.execute_giant_sql(text)
        assert len(rows) == 1
        assert rows[0]["p1_exename"] == "/bin/tar"

    def test_giant_cypher_baseline_agrees(self, data_leak_store,
                                          data_leak_extraction):
        from repro.tbql.synthesis import SynthesisPlan, TBQLSynthesizer
        plan = SynthesisPlan(use_path_patterns=True, fuzzy_paths=False,
                             temporal_order=False)
        text = TBQLSynthesizer(plan).synthesize(
            data_leak_extraction.graph).text
        executor = TBQLExecutor(data_leak_store)
        rows = executor.execute_giant_cypher(text)
        assert len(rows) == 1
        assert rows[0]["i1_dstip"] == "192.168.29.128"
