"""Property-based layout equivalence: segmented == monolithic, any cuts.

A log split at *random* segment boundaries and ingested into a
segmented store must answer the full TBQL join-equivalence corpus
identically to a monolithic store fed through the same boundaries (the
flush points are shared because sealing closes open merge runs — same
data in, same stored events, only the layout differs).  Checked at
``workers=1`` (serial in-process scans) and ``workers=4`` (the
multiprocessing scatter-gather pool), for both segment scan strategies
(``columnar`` memory-mapped reads and ``sqlite`` per-segment SQL).
"""

from __future__ import annotations

from operator import attrgetter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.audit import AuditCollector, CollectorConfig, \
    generate_benign_noise
from repro.storage import DualStore
from repro.tbql.executor import TBQLExecutor

from .conftest import record_data_leak_attack
from .test_tbql_join_equivalence import EQUIVALENCE_CORPUS

#: Worker counts the property holds for (serial + process pool).
WORKER_COUNTS = (1, 4)

#: Segment scan strategies the property holds for.
SCAN_STRATEGIES = ("columnar", "sqlite")


def _corpus_events():
    collector = AuditCollector(CollectorConfig(seed=11))
    record_data_leak_attack(collector)
    events = collector.events() + generate_benign_noise(num_sessions=8,
                                                        seed=23)
    events.sort(key=attrgetter("start_time", "event_id"))
    return events


EVENTS = _corpus_events()


def _build_pair(boundaries: list[int]):
    """Build both layouts from the same cuts (and the same seal points)."""
    cuts = sorted(set(boundaries))
    starts = [0] + cuts
    ends = cuts + [len(EVENTS)]
    mono = DualStore()
    seg = DualStore(layout="segmented")
    for start, end in zip(starts, ends):
        batch = EVENTS[start:end]
        for store in (mono, seg):
            store.append_events(batch)
            store.flush_appends()
    return mono, seg


def _assert_corpus_identical(mono, seg, corpus) -> None:
    reference = TBQLExecutor(mono)
    executors = [TBQLExecutor(seg, workers=workers,
                              scan_strategy=strategy)
                 for workers in WORKER_COUNTS
                 for strategy in SCAN_STRATEGIES]
    try:
        for text in corpus:
            expected = reference.execute(text)
            for executor in executors:
                got = executor.execute(text)
                assert got.rows == expected.rows, text
                assert got.matched_events == expected.matched_events, text
                assert got.per_pattern_matches == \
                    expected.per_pattern_matches, text
    finally:
        for executor in executors:
            executor.close()


@settings(max_examples=8, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(boundaries=st.lists(
    st.integers(min_value=1, max_value=max(len(EVENTS) - 1, 1)),
    min_size=1, max_size=6))
def test_random_boundaries_answer_corpus_identically(boundaries):
    mono, seg = _build_pair(boundaries)
    try:
        # Shared entities, temporal/attribute relations, DISTINCT, and a
        # no-match query — the corpus slice that exercises every join
        # shape; the fixed-boundary test below runs the full corpus.
        _assert_corpus_identical(mono, seg, EQUIVALENCE_CORPUS[:6])
    finally:
        mono.close()
        seg.close()


@pytest.mark.parametrize("batches", [1, 3, 7])
def test_fixed_boundaries_full_corpus(batches):
    step = len(EVENTS) // batches + 1
    mono, seg = _build_pair(list(range(step, len(EVENTS), step)))
    try:
        _assert_corpus_identical(mono, seg, EQUIVALENCE_CORPUS)
    finally:
        mono.close()
        seg.close()


def test_degenerate_cuts_collapse():
    """Duplicate/extreme cut points must not break the partitioning."""
    mono, seg = _build_pair([1, 1, len(EVENTS) - 1, len(EVENTS) - 1])
    try:
        view = seg.segment_view()
        assert view.sealed_events == seg.relational.count_events()
        _assert_corpus_identical(mono, seg, EQUIVALENCE_CORPUS[:2])
    finally:
        mono.close()
        seg.close()
