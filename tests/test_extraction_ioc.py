"""Unit and property tests for IOC recognition and protection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.extraction.ioc import (AUDITABLE_IOC_TYPES, IOCRecognizer,
                                  IOCType, recognize_iocs)
from repro.extraction.protection import (PROTECTION_WORD, protect_iocs,
                                         restore_tree)
from repro.nlp.depparse import RuleDependencyParser


def values_of(text, ioc_type=None):
    iocs = recognize_iocs(text)
    if ioc_type is not None:
        iocs = [ioc for ioc in iocs if ioc.ioc_type is ioc_type]
    return [ioc.value for ioc in iocs]


class TestRecognizer:
    def test_unix_filepath(self):
        assert values_of("read /etc/passwd now") == ["/etc/passwd"]
        assert recognize_iocs("read /etc/passwd")[0].ioc_type is \
            IOCType.FILEPATH

    def test_nested_filepath_longest_match(self):
        assert values_of("wrote /tmp/upload.tar.bz2 out") == \
            ["/tmp/upload.tar.bz2"]

    def test_windows_filepath(self):
        found = values_of(r"dropped C:\Users\victim\payload.exe today")
        assert r"C:\Users\victim\payload.exe" in found
        assert all("today" not in value for value in found)

    def test_filename_with_extension(self):
        assert "payload.exe" in values_of("excel.exe wrote payload.exe")
        assert "logins.json" in values_of("read logins.json")

    def test_ipv4(self):
        assert values_of("connect to 192.168.29.128 now",
                         IOCType.IP) == ["192.168.29.128"]

    def test_invalid_ip_rejected(self):
        assert values_of("version 999.999.999.999 here", IOCType.IP) == []

    def test_cidr(self):
        iocs = recognize_iocs("block 10.0.0.0/24 at the firewall")
        assert iocs[0].ioc_type is IOCType.CIDR
        assert iocs[0].normalized == "10.0.0.0"

    def test_url_and_domain(self):
        assert values_of("visit http://evil.example.com/a.php",
                         IOCType.URL) == ["http://evil.example.com/a.php"]
        assert "command-and-control.ru" in values_of(
            "beacons to command-and-control.ru daily", IOCType.DOMAIN)

    def test_email(self):
        assert values_of("mail admin@corp.com now", IOCType.EMAIL) == \
            ["admin@corp.com"]

    def test_hashes(self):
        md5 = "d41d8cd98f00b204e9800998ecf8427e"
        sha256 = "e" * 64
        text = f"hashes {md5} and {sha256}"
        assert values_of(text, IOCType.MD5) == [md5]
        assert values_of(text, IOCType.SHA256) == [sha256]

    def test_cve(self):
        assert values_of("exploits CVE-2014-6271 remotely",
                         IOCType.CVE) == ["CVE-2014-6271"]

    def test_registry_key(self):
        found = values_of(r"writes HKEY_LOCAL_MACHINE\Software\Run\evil")
        assert any("HKEY_LOCAL_MACHINE" in value for value in found)

    def test_android_package(self):
        assert "com.android.defcontainer" in values_of(
            "com.android.defcontainer opened the apk")

    def test_no_false_positive_on_plain_text(self):
        assert values_of("the attacker read the password file") == []

    def test_results_sorted_and_non_overlapping(self):
        iocs = recognize_iocs(
            "used /bin/tar to read /etc/passwd and sent to 192.168.29.128")
        starts = [ioc.start for ioc in iocs]
        assert starts == sorted(starts)
        for left, right in zip(iocs, iocs[1:]):
            assert left.end <= right.start

    def test_auditable_types_cover_files_processes_ips(self):
        assert IOCType.FILEPATH in AUDITABLE_IOC_TYPES
        assert IOCType.IP in AUDITABLE_IOC_TYPES
        assert IOCType.URL not in AUDITABLE_IOC_TYPES
        assert IOCType.REGISTRY not in AUDITABLE_IOC_TYPES

    @given(st.text(alphabet=st.characters(min_codepoint=32,
                                          max_codepoint=126), max_size=120))
    @settings(max_examples=80, deadline=None)
    def test_never_crashes_and_offsets_valid(self, text):
        for ioc in IOCRecognizer().recognize(text):
            assert 0 <= ioc.start < ioc.end <= len(text)
            assert text[ioc.start:ioc.end] == ioc.value


class TestProtection:
    def test_replaces_iocs_with_dummy_word(self):
        protected = protect_iocs(
            "the attacker used /bin/tar to read /etc/passwd")
        assert "/bin/tar" not in protected.text
        assert protected.text.count(PROTECTION_WORD) == 2
        assert len(protected.records) == 2

    def test_records_preserve_order(self):
        protected = protect_iocs("/bin/tar read /etc/passwd")
        assert protected.records[0].ioc.value == "/bin/tar"
        assert protected.records[1].ioc.value == "/etc/passwd"

    def test_record_for_out_of_range(self):
        protected = protect_iocs("no iocs at all")
        assert protected.record_for(0) is None

    def test_text_without_iocs_unchanged(self):
        text = "the attacker read the password file"
        assert protect_iocs(text).text == text

    def test_restore_into_tree(self):
        protected = protect_iocs("/bin/tar read /etc/passwd.")
        tree = RuleDependencyParser().parse(protected.text)
        consumed = restore_tree(tree, protected, 0)
        assert consumed == 2
        restored = [n.text for n in tree.nodes
                    if "ioc_value" in n.annotations]
        assert restored == ["/bin/tar", "/etc/passwd"]
        types = [n.annotations["ioc_type"] for n in tree.nodes
                 if "ioc_type" in n.annotations]
        assert all(t is IOCType.FILEPATH for t in types)

    def test_restore_across_sentences_keeps_counter(self):
        protected = protect_iocs("/bin/tar read /etc/passwd. "
                                 "/bin/bzip2 read /tmp/upload.tar.")
        parser = RuleDependencyParser()
        from repro.nlp.sentences import split_sentences
        consumed = 0
        restored = []
        for sentence in split_sentences(protected.text):
            tree = parser.parse(sentence.text)
            consumed = restore_tree(tree, protected, consumed)
            restored += [n.text for n in tree.nodes
                         if "ioc_value" in n.annotations]
        assert restored == ["/bin/tar", "/etc/passwd", "/bin/bzip2",
                            "/tmp/upload.tar"]

    @given(st.lists(st.sampled_from(["/etc/passwd", "/bin/tar",
                                     "192.168.1.7", "payload.exe",
                                     "com.android.email"]),
                    min_size=1, max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_protection_roundtrip_property(self, iocs):
        text = "the tool " + " touched ".join(iocs) + " today"
        protected = protect_iocs(text)
        assert len(protected.records) == len(iocs)
        assert [record.ioc.value for record in protected.records] == iocs
