"""Setuptools entry point (kept for environments without PEP 660 support).

All package metadata lives in ``pyproject.toml`` (src layout, name, version,
``python_requires``); this shim only exists so legacy ``python setup.py``
workflows keep functioning.
"""
from setuptools import setup

setup()
